// Token (logit) benchmarking method: letter-token variant detection and
// deterministic argmax evaluation.
#include <gtest/gtest.h>

#include "corpus/corpora.hpp"
#include "eval/prompts.hpp"
#include "eval/token_method.hpp"
#include "util/rng.hpp"

namespace astromlab::eval {
namespace {

struct TinyWorld {
  corpus::KnowledgeBase kb;
  corpus::McqSplit mcqs;
  tokenizer::BpeTokenizer tok;
};

TinyWorld make_world(std::size_t vocab = 420) {
  TinyWorld world;
  corpus::KbConfig kb_config;
  kb_config.n_topics = 5;
  kb_config.entities_per_topic = 3;
  kb_config.facts_per_entity = 2;
  kb_config.seed = 51;
  world.kb = corpus::KnowledgeBase::generate(kb_config);
  corpus::McqGenConfig mcq_config;
  mcq_config.questions_per_topic = 2;
  mcq_config.seed = 52;
  world.mcqs = corpus::generate_mcqs(world.kb, mcq_config);
  tokenizer::BpeTrainConfig tok_config;
  tok_config.vocab_size = vocab;
  world.tok = tokenizer::BpeTokenizer::train(
      corpus::build_tokenizer_training_text(world.kb, world.mcqs.practice, 53), tok_config);
  return world;
}

nn::GptModel make_model(const TinyWorld& world, std::size_t ctx = 448) {
  nn::GptConfig config;
  config.vocab_size = world.tok.vocab_size();
  config.ctx_len = ctx;
  config.d_model = 24;
  config.n_heads = 2;
  config.n_layers = 1;
  config.d_ff = 48;
  nn::GptModel model(config);
  util::Rng rng(54);
  model.init_weights(rng);
  return model;
}

TEST(LetterDetection, ReturnsUsableTokensForTrainedVocab) {
  const TinyWorld world = make_world();
  const nn::GptModel model = make_model(world);
  const auto fewshot = pick_fewshot_examples(world.mcqs.practice);
  const LetterTokens letters =
      detect_letter_tokens(model, world.tok, world.mcqs.practice, fewshot);
  // All four ids valid and distinct.
  for (int i = 0; i < 4; ++i) {
    EXPECT_GE(letters.ids[static_cast<std::size_t>(i)], 0);
    EXPECT_LT(static_cast<std::size_t>(letters.ids[static_cast<std::size_t>(i)]),
              world.tok.vocab_size());
    for (int j = i + 1; j < 4; ++j) {
      EXPECT_NE(letters.ids[static_cast<std::size_t>(i)],
                letters.ids[static_cast<std::size_t>(j)]);
    }
  }
  // Exactly one representation mode is active.
  EXPECT_NE(letters.leading_space, letters.feed_space_first);
  // The resolved ids decode back to the letters.
  for (int i = 0; i < 4; ++i) {
    const std::string text = world.tok.decode_token(letters.ids[static_cast<std::size_t>(i)]);
    const std::string expected =
        (letters.leading_space ? std::string(" ") : std::string()) +
        static_cast<char>('A' + i);
    EXPECT_EQ(text, expected);
  }
}

TEST(LetterDetection, FallsBackToBareLettersWithoutSpacedMerges) {
  // A byte-only tokenizer (vocab 256 + specials, no merges) cannot contain
  // " A" as a single token; the detector must pick the bare letters and
  // request an explicit space feed.
  const TinyWorld world = make_world(/*vocab=*/263);  // 256 bytes + specials
  ASSERT_FALSE(world.tok.token_to_id(" A").has_value());
  const nn::GptModel model = make_model(world);
  const auto fewshot = pick_fewshot_examples(world.mcqs.practice);
  const LetterTokens letters =
      detect_letter_tokens(model, world.tok, world.mcqs.practice, fewshot);
  EXPECT_TRUE(letters.feed_space_first);
  EXPECT_FALSE(letters.leading_space);
  EXPECT_EQ(world.tok.decode_token(letters.ids[0]), "A");
}

TEST(TokenPredict, DeterministicAndInRange) {
  const TinyWorld world = make_world();
  const nn::GptModel model = make_model(world);
  const auto fewshot = pick_fewshot_examples(world.mcqs.practice);
  const LetterTokens letters =
      detect_letter_tokens(model, world.tok, world.mcqs.practice, fewshot);
  for (const corpus::McqItem& item : world.mcqs.benchmark) {
    const int a = token_predict(model, world.tok, letters, item, fewshot);
    const int b = token_predict(model, world.tok, letters, item, fewshot);
    EXPECT_EQ(a, b);
    EXPECT_GE(a, -1);
    EXPECT_LE(a, 3);
  }
}

TEST(TokenPredict, OverlongPromptYieldsNoAnswer) {
  const TinyWorld world = make_world();
  const nn::GptModel model = make_model(world, /*ctx=*/16);  // far too small
  const auto fewshot = pick_fewshot_examples(world.mcqs.practice);
  LetterTokens letters;
  letters.ids = {static_cast<tokenizer::TokenId>('A'), static_cast<tokenizer::TokenId>('B'),
                 static_cast<tokenizer::TokenId>('C'), static_cast<tokenizer::TokenId>('D')};
  const int predicted =
      token_predict(model, world.tok, letters, world.mcqs.benchmark.front(), fewshot);
  EXPECT_EQ(predicted, -1);
}

TEST(RunTokenBenchmark, ProducesOneResultPerQuestion) {
  const TinyWorld world = make_world();
  const nn::GptModel model = make_model(world);
  const auto results =
      run_token_benchmark(model, world.tok, world.mcqs.benchmark, world.mcqs.practice);
  ASSERT_EQ(results.size(), world.mcqs.benchmark.size());
  for (std::size_t q = 0; q < results.size(); ++q) {
    EXPECT_EQ(results[q].correct, static_cast<int>(world.mcqs.benchmark[q].correct));
    EXPECT_EQ(results[q].tier, world.mcqs.benchmark[q].tier);
  }
}

TEST(RunTokenBenchmark, UntrainedModelScoresNearChance) {
  // Sanity bound: with 4 options a random-weight model cannot exceed
  // chance by much on 10 questions — but the real assertion is that it
  // answers every question (the prompt machinery works end-to-end).
  const TinyWorld world = make_world();
  const nn::GptModel model = make_model(world);
  const auto results =
      run_token_benchmark(model, world.tok, world.mcqs.benchmark, world.mcqs.practice);
  std::size_t answered = 0;
  for (const auto& result : results) answered += result.predicted >= 0;
  EXPECT_EQ(answered, results.size());
}

}  // namespace
}  // namespace astromlab::eval
