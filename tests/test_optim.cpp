// AdamW and LR schedule behaviour, plus an end-to-end "training reduces
// loss" check on a tiny model.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/adamw.hpp"
#include "nn/data.hpp"
#include "nn/gpt.hpp"
#include "nn/lr_schedule.hpp"
#include "nn/trainer.hpp"
#include "util/rng.hpp"

namespace astromlab::nn {
namespace {

TEST(CosineSchedule, WarmupRampsLinearly) {
  CosineSchedule schedule(1.0f, 1000, 0.1, 0.0);
  EXPECT_EQ(schedule.warmup_steps(), 100u);
  EXPECT_NEAR(schedule.lr(0), 0.01f, 1e-6f);
  EXPECT_NEAR(schedule.lr(49), 0.5f, 1e-6f);
  EXPECT_NEAR(schedule.lr(99), 1.0f, 1e-6f);
}

TEST(CosineSchedule, DecaysToFloor) {
  CosineSchedule schedule(2.0f, 100, 0.0, 0.1);
  EXPECT_NEAR(schedule.lr(0), 2.0f, 1e-5f);
  EXPECT_NEAR(schedule.lr(100), 0.2f, 1e-5f);   // floor = min_lr_ratio * base
  EXPECT_NEAR(schedule.lr(5000), 0.2f, 1e-5f);  // clamped past the end
  // Midpoint of cosine is halfway between base and floor.
  EXPECT_NEAR(schedule.lr(50), (2.0f + 0.2f) / 2.0f, 0.05f);
}

TEST(CosineSchedule, MonotoneDecreasingAfterWarmup) {
  CosineSchedule schedule(1.0f, 200, 0.03, 0.1);
  float previous = 1e9f;
  for (std::size_t step = schedule.warmup_steps(); step < 200; ++step) {
    const float lr = schedule.lr(step);
    EXPECT_LE(lr, previous + 1e-7f);
    previous = lr;
  }
}

TEST(ConstantSchedule, IsConstant) {
  ConstantSchedule schedule(0.25f);
  EXPECT_EQ(schedule.lr(0), 0.25f);
  EXPECT_EQ(schedule.lr(100000), 0.25f);
}

// Minimal quadratic "model": loss = 0.5 * sum(p^2), grad = p. AdamW should
// drive parameters toward zero.
class QuadraticFixture {
 public:
  QuadraticFixture() {
    index_ = table_.register_segment("w", 8, /*decay=*/true);
    table_.allocate();
    for (std::size_t i = 0; i < 8; ++i) table_.param(index_)[i] = 1.0f + 0.1f * i;
  }
  void fill_grads() {
    for (std::size_t i = 0; i < 8; ++i) table_.grad(index_)[i] = table_.param(index_)[i];
  }
  ParamTable& table() { return table_; }
  float param(std::size_t i) { return table_.param(index_)[i]; }

 private:
  ParamTable table_;
  std::size_t index_;
};

TEST(AdamW, ConvergesOnQuadratic) {
  QuadraticFixture fixture;
  AdamWConfig config;
  config.weight_decay = 0.0f;
  config.clip_norm = 0.0f;
  AdamW optimizer(fixture.table(), config);
  for (int step = 0; step < 300; ++step) {
    fixture.table().zero_grads();
    fixture.fill_grads();
    optimizer.step(0.05f);
  }
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(fixture.param(i), 0.0f, 0.05f) << i;
  }
}

TEST(AdamW, ClippingBoundsEffectiveGradient) {
  QuadraticFixture fixture;
  AdamWConfig config;
  config.clip_norm = 1e-3f;
  AdamW optimizer(fixture.table(), config);
  fixture.fill_grads();
  const double reported = optimizer.step(0.1f);
  EXPECT_GT(reported, 1e-3);  // pre-clip norm reported
  // After clipping, the gradient buffer norm is the clip value.
  EXPECT_NEAR(fixture.table().grad_norm(), 1e-3, 1e-6);
}

TEST(AdamW, DecayAppliesOnlyToMaskedSegments) {
  ParamTable table;
  const std::size_t w = table.register_segment("w", 1, /*decay=*/true);
  const std::size_t b = table.register_segment("b", 1, /*decay=*/false);
  table.allocate();
  table.param(w)[0] = 4.0f;
  table.param(b)[0] = 4.0f;
  AdamWConfig config;
  config.weight_decay = 0.5f;
  config.clip_norm = 0.0f;
  AdamW optimizer(table, config);
  // Zero gradients: only decay moves parameters.
  optimizer.step(0.1f);
  EXPECT_LT(table.param(w)[0], 4.0f);
  EXPECT_FLOAT_EQ(table.param(b)[0], 4.0f);
}

TEST(AdamW, ResetClearsState) {
  QuadraticFixture fixture;
  AdamW optimizer(fixture.table(), {});
  fixture.fill_grads();
  optimizer.step(0.1f);
  EXPECT_EQ(optimizer.step_count(), 1u);
  optimizer.reset();
  EXPECT_EQ(optimizer.step_count(), 0u);
}

TEST(Trainer, ReducesLossOnTinyCorpus) {
  GptConfig config;
  config.vocab_size = 30;
  config.ctx_len = 16;
  config.d_model = 16;
  config.n_heads = 2;
  config.n_layers = 1;
  config.d_ff = 32;
  GptModel model(config);
  util::Rng rng(11);
  model.init_weights(rng);

  // A strongly patterned stream: ascending cycles are easy to learn.
  std::vector<Token> stream(3000);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    stream[i] = static_cast<Token>(i % 10);
  }
  StreamDataset data(stream);

  TrainConfig train;
  train.micro_batch = 4;
  train.seq_len = 16;
  train.lr = 5e-3f;
  train.max_steps = 120;
  Trainer trainer(model, train);
  util::Rng train_rng(13);
  const TrainStats stats = trainer.train(data, train_rng);

  EXPECT_EQ(stats.steps, 120u);
  EXPECT_LT(stats.final_loss, stats.first_loss * 0.5f);
  EXPECT_LT(stats.final_loss, 0.7f);  // pattern is nearly deterministic
  EXPECT_GT(stats.tokens_per_second, 0.0);

  // And the trained model predicts the cycle.
  GptActivations acts;
  std::vector<Token> probe = {0, 1, 2, 3, 4, 5, 6, 7};
  model.forward(acts, probe.data(), nullptr, 1, probe.size());
  const std::size_t v = config.vocab_size;
  const float* last = acts.logits.data() + 7 * v;
  std::size_t argmax = 0;
  for (std::size_t j = 1; j < v; ++j) {
    if (last[j] > last[argmax]) argmax = j;
  }
  EXPECT_EQ(argmax, 8u);
}

TEST(Trainer, PlannedStepsFollowEpochsAndOverride) {
  GptConfig config;
  config.vocab_size = 16;
  config.ctx_len = 8;
  config.d_model = 8;
  config.n_heads = 1;
  config.n_layers = 1;
  config.d_ff = 16;
  GptModel model(config);
  std::vector<Token> stream(1000, 1);
  StreamDataset data(stream);

  TrainConfig train;
  train.micro_batch = 2;
  train.grad_accum = 2;
  train.seq_len = 8;
  train.epochs = 2.0;
  Trainer trainer(model, train);
  // tokens/step = 2*2*8 = 32; 2 epochs over 1000 tokens -> 62 steps.
  EXPECT_EQ(trainer.planned_steps(data), 62u);
  train.max_steps = 5;
  Trainer overridden(model, train);
  EXPECT_EQ(overridden.planned_steps(data), 5u);
}

}  // namespace
}  // namespace astromlab::nn
