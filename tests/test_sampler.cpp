#include <gtest/gtest.h>

#include <algorithm>

#include "nn/sampler.hpp"
#include "util/rng.hpp"

namespace astromlab::nn {
namespace {

GptModel small_model() {
  GptConfig config;
  config.vocab_size = 32;
  config.ctx_len = 24;
  config.d_model = 16;
  config.n_heads = 2;
  config.n_layers = 1;
  config.d_ff = 32;
  GptModel model(config);
  util::Rng rng(21);
  model.init_weights(rng);
  return model;
}

TEST(SamplerPick, GreedyIsArgmax) {
  const std::vector<float> logits = {0.1f, 2.0f, -1.0f, 1.9f};
  SampleConfig config;
  config.temperature = 0.0f;
  util::Rng rng(1);
  EXPECT_EQ(Sampler::pick(logits, config, rng), 1);
}

TEST(SamplerPick, TemperatureSamplesProportionally) {
  const std::vector<float> logits = {0.0f, 0.0f, 10.0f};
  SampleConfig config;
  config.temperature = 1.0f;
  util::Rng rng(2);
  int hits = 0;
  for (int i = 0; i < 200; ++i) {
    if (Sampler::pick(logits, config, rng) == 2) ++hits;
  }
  EXPECT_GT(hits, 195);  // overwhelming mass on index 2
}

TEST(SamplerPick, HighTemperatureSpreadsMass) {
  const std::vector<float> logits = {0.0f, 1.0f, 2.0f, 3.0f};
  SampleConfig config;
  config.temperature = 50.0f;  // near-uniform
  util::Rng rng(3);
  int counts[4] = {};
  for (int i = 0; i < 4000; ++i) ++counts[Sampler::pick(logits, config, rng)];
  for (int c : counts) EXPECT_GT(c, 700);
}

TEST(SamplerPick, TopKMasksTail) {
  const std::vector<float> logits = {5.0f, 4.0f, -100.0f, -100.0f};
  SampleConfig config;
  config.temperature = 1.0f;
  config.top_k = 2;
  util::Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const Token picked = Sampler::pick(logits, config, rng);
    EXPECT_TRUE(picked == 0 || picked == 1);
  }
}

TEST(SamplerGenerate, StopsAtStopToken) {
  GptModel model = small_model();
  // Find what the model emits greedily after the prompt, then declare that
  // token a stop token: generation must halt immediately with no output.
  Sampler probe(model);
  SampleConfig config;
  config.max_new_tokens = 1;
  util::Rng rng(5);
  const SampleResult first = probe.generate({1, 2, 3}, config, rng);
  ASSERT_EQ(first.tokens.size(), 1u);

  config.max_new_tokens = 10;
  config.stop_tokens = {first.tokens[0]};
  Sampler sampler(model);
  const SampleResult result = sampler.generate({1, 2, 3}, config, rng);
  EXPECT_TRUE(result.hit_stop);
  EXPECT_TRUE(result.tokens.empty());
}

TEST(SamplerGenerate, RespectsMaxNewTokens) {
  GptModel model = small_model();
  Sampler sampler(model);
  SampleConfig config;
  config.max_new_tokens = 5;
  util::Rng rng(6);
  const SampleResult result = sampler.generate({1}, config, rng);
  EXPECT_EQ(result.tokens.size(), 5u);
  EXPECT_FALSE(result.hit_stop);
}

TEST(SamplerGenerate, StopsAtContextLimit) {
  GptModel model = small_model();
  Sampler sampler(model);
  SampleConfig config;
  config.max_new_tokens = 1000;
  util::Rng rng(7);
  std::vector<Token> prompt(20, 1);  // ctx is 24
  const SampleResult result = sampler.generate(prompt, config, rng);
  EXPECT_TRUE(result.hit_context_limit);
  // The final token is predicted from a full context but never fed back,
  // so prompt + generated may exceed ctx by exactly one.
  EXPECT_LE(prompt.size() + result.tokens.size(), model.config().ctx_len + 1);
}

TEST(SamplerGenerate, OverlongPromptReturnsEmpty) {
  GptModel model = small_model();
  Sampler sampler(model);
  SampleConfig config;
  util::Rng rng(8);
  std::vector<Token> prompt(40, 1);
  const SampleResult result = sampler.generate(prompt, config, rng);
  EXPECT_TRUE(result.hit_context_limit);
  EXPECT_TRUE(result.tokens.empty());
}

TEST(SamplerGenerate, GreedyIsDeterministic) {
  GptModel model = small_model();
  SampleConfig config;
  config.max_new_tokens = 8;
  util::Rng rng_a(9), rng_b(999);  // rng must not matter at temperature 0
  Sampler a(model), b(model);
  const SampleResult ra = a.generate({3, 1, 4}, config, rng_a);
  const SampleResult rb = b.generate({3, 1, 4}, config, rng_b);
  EXPECT_EQ(ra.tokens, rb.tokens);
}

}  // namespace
}  // namespace astromlab::nn
