#include <gtest/gtest.h>

#include <set>

#include "corpus/mcq.hpp"

namespace astromlab::corpus {
namespace {

KnowledgeBase make_kb(std::size_t questions_headroom = 2) {
  KbConfig config;
  config.n_topics = 6;
  config.entities_per_topic = 4;
  config.facts_per_entity = questions_headroom;
  config.seed = 23;
  return KnowledgeBase::generate(config);
}

McqGenConfig gen_config(std::size_t per_topic = 3) {
  McqGenConfig config;
  config.questions_per_topic = per_topic;
  config.seed = 24;
  return config;
}

TEST(McqGen, ProducesRequestedBenchmarkSize) {
  const KnowledgeBase kb = make_kb();
  const McqSplit split = generate_mcqs(kb, gen_config(3));
  EXPECT_EQ(split.benchmark.size(), 6u * 3u);  // topics x questions
  EXPECT_EQ(split.practice.size(), kb.facts().size() - split.benchmark.size());
}

TEST(McqGen, BenchmarkAndPracticeFactsAreDisjoint) {
  const KnowledgeBase kb = make_kb();
  const McqSplit split = generate_mcqs(kb, gen_config(3));
  std::set<std::size_t> benchmark_facts;
  for (const McqItem& item : split.benchmark) benchmark_facts.insert(item.fact_index);
  for (const McqItem& item : split.practice) {
    EXPECT_EQ(benchmark_facts.count(item.fact_index), 0u);
  }
}

TEST(McqGen, CorrectOptionMatchesKnowledgeBase) {
  const KnowledgeBase kb = make_kb();
  const McqSplit split = generate_mcqs(kb, gen_config(3));
  for (const McqItem& item : split.benchmark) {
    const Fact& fact = kb.facts()[item.fact_index];
    EXPECT_EQ(item.options[item.correct], kb.value_text(fact));
    EXPECT_EQ(item.question, kb.question(fact));
    EXPECT_EQ(item.tier, fact.tier);
    EXPECT_EQ(item.topic, fact.topic);
  }
}

TEST(McqGen, OptionsAreDistinctAndFromSameDomain) {
  const KnowledgeBase kb = make_kb();
  const McqSplit split = generate_mcqs(kb, gen_config(3));
  for (const McqItem& item : split.benchmark) {
    const Relation& relation = kb.relation_of(kb.facts()[item.fact_index]);
    std::set<std::string> unique(item.options.begin(), item.options.end());
    EXPECT_EQ(unique.size(), 4u) << item.question;
    for (const std::string& option : item.options) {
      const auto& domain = relation.domain.options;
      EXPECT_NE(std::find(domain.begin(), domain.end(), option), domain.end())
          << option << " not in domain of " << relation.id;
    }
  }
}

TEST(McqGen, CorrectLetterPositionIsUnbiased) {
  KbConfig config;
  config.n_topics = 30;
  config.entities_per_topic = 6;
  config.facts_per_entity = 2;
  config.seed = 25;
  const KnowledgeBase kb = KnowledgeBase::generate(config);
  const McqSplit split = generate_mcqs(kb, gen_config(5));
  std::size_t counts[4] = {};
  for (const McqItem& item : split.benchmark) ++counts[item.correct];
  const double expected = static_cast<double>(split.benchmark.size()) / 4.0;
  for (int slot = 0; slot < 4; ++slot) {
    EXPECT_NEAR(counts[slot], expected, expected * 0.5) << "slot " << slot;
  }
}

TEST(McqGen, DeterministicForSeed) {
  const KnowledgeBase kb = make_kb();
  const McqSplit a = generate_mcqs(kb, gen_config(3));
  const McqSplit b = generate_mcqs(kb, gen_config(3));
  ASSERT_EQ(a.benchmark.size(), b.benchmark.size());
  for (std::size_t i = 0; i < a.benchmark.size(); ++i) {
    EXPECT_EQ(a.benchmark[i].question, b.benchmark[i].question);
    EXPECT_EQ(a.benchmark[i].correct, b.benchmark[i].correct);
    EXPECT_EQ(a.benchmark[i].options, b.benchmark[i].options);
  }
}

TEST(McqGen, ClampsWhenTopicHasFewFacts) {
  const KnowledgeBase kb = make_kb(/*facts_per_entity=*/1);  // 4 facts/topic
  const McqSplit split = generate_mcqs(kb, gen_config(10));
  EXPECT_EQ(split.benchmark.size(), kb.facts().size());  // all facts used
  EXPECT_TRUE(split.practice.empty());
}

TEST(RenderExamBlock, WithAndWithoutAnswer) {
  McqItem item;
  item.question = "What is X?";
  item.options = {"one", "two", "three", "four"};
  item.correct = 1;
  const std::string with = render_exam_block(item, true);
  const std::string without = render_exam_block(item, false);
  EXPECT_NE(with.find("Question: What is X?\n"), std::string::npos);
  EXPECT_NE(with.find("A: one\n"), std::string::npos);
  EXPECT_NE(with.find("D: four\n"), std::string::npos);
  EXPECT_NE(with.find("Answer: B\n"), std::string::npos);
  // The probe form ends exactly at "Answer:" so the next token is the
  // letter — the §V-B probe position.
  EXPECT_EQ(without.substr(without.size() - 7), "Answer:");
}

TEST(McqItem, CorrectLetterMapsIndex) {
  McqItem item;
  item.correct = 0;
  EXPECT_EQ(item.correct_letter(), 'A');
  item.correct = 3;
  EXPECT_EQ(item.correct_letter(), 'D');
}

}  // namespace
}  // namespace astromlab::corpus
