// Forward-pass correctness: shapes, loss semantics (ignore targets),
// batch-forward vs KV-cache-inference consistency, and determinism.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/gpt.hpp"
#include "util/rng.hpp"

namespace astromlab::nn {
namespace {

GptConfig tiny_config() {
  GptConfig config;
  config.vocab_size = 40;
  config.ctx_len = 16;
  config.d_model = 24;
  config.n_heads = 3;
  config.n_layers = 2;
  config.d_ff = 48;
  return config;
}

GptModel tiny_model(std::uint64_t seed = 1) {
  GptModel model(tiny_config());
  util::Rng rng(seed);
  model.init_weights(rng);
  return model;
}

TEST(GptConfig, ValidatesDimensions) {
  GptConfig bad = tiny_config();
  bad.n_heads = 5;  // does not divide d_model=24... actually it doesn't
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = tiny_config();
  bad.vocab_size = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(GptConfig, ParamCountMatchesLayout) {
  // The model constructor cross-checks param_count() against the actual
  // registered layout and throws on mismatch.
  EXPECT_NO_THROW(GptModel{tiny_config()});
  const GptModel model{tiny_config()};
  EXPECT_EQ(model.param_count(), tiny_config().param_count());
  EXPECT_GT(model.param_count(), 0u);
}

TEST(GptForward, LossNearLogVocabAtInit) {
  GptModel model = tiny_model();
  GptActivations acts;
  std::vector<Token> tokens = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<Token> targets = {2, 3, 4, 5, 6, 7, 8, 9};
  const float loss = model.forward(acts, tokens.data(), targets.data(), 1, 8);
  const float uniform = std::log(static_cast<float>(tiny_config().vocab_size));
  EXPECT_NEAR(loss, uniform, 0.5f);
}

TEST(GptForward, DeterministicAcrossCalls) {
  GptModel model = tiny_model();
  GptActivations acts1, acts2;
  std::vector<Token> tokens = {3, 1, 4, 1, 5, 9, 2, 6};
  std::vector<Token> targets = {1, 4, 1, 5, 9, 2, 6, 5};
  const float a = model.forward(acts1, tokens.data(), targets.data(), 2, 4);
  const float b = model.forward(acts2, tokens.data(), targets.data(), 2, 4);
  EXPECT_FLOAT_EQ(a, b);
  for (std::size_t i = 0; i < 2 * 4 * tiny_config().vocab_size; ++i) {
    EXPECT_FLOAT_EQ(acts1.logits[i], acts2.logits[i]);
  }
}

TEST(GptForward, IgnoredTargetsDropOutOfLoss) {
  GptModel model = tiny_model();
  GptActivations acts;
  std::vector<Token> tokens = {1, 2, 3, 4};
  std::vector<Token> all = {2, 3, 4, 5};
  std::vector<Token> last_only = {kIgnoreTarget, kIgnoreTarget, kIgnoreTarget, 5};
  const float loss_all = model.forward(acts, tokens.data(), all.data(), 1, 4);
  const float loss_last = model.forward(acts, tokens.data(), last_only.data(), 1, 4);
  // Loss over the last position only must equal that position's NLL, which
  // in general differs from the 4-position mean.
  EXPECT_GT(loss_all, 0.0f);
  EXPECT_GT(loss_last, 0.0f);
  EXPECT_NE(loss_all, loss_last);
  // All-ignored is a valid no-op.
  std::vector<Token> none(4, kIgnoreTarget);
  EXPECT_FLOAT_EQ(model.forward(acts, tokens.data(), none.data(), 1, 4), 0.0f);
}

TEST(GptForward, RejectsBadInputs) {
  GptModel model = tiny_model();
  GptActivations acts;
  std::vector<Token> too_big = {static_cast<Token>(tiny_config().vocab_size)};
  EXPECT_THROW(model.forward(acts, too_big.data(), nullptr, 1, 1), std::out_of_range);
  std::vector<Token> tokens(tiny_config().ctx_len + 1, 0);
  EXPECT_THROW(model.forward(acts, tokens.data(), nullptr, 1, tokens.size()),
               std::invalid_argument);
}

TEST(GptForward, CausalityLaterTokensCannotAffectEarlierLogits) {
  GptModel model = tiny_model();
  GptActivations acts;
  std::vector<Token> a = {5, 6, 7, 8};
  std::vector<Token> b = {5, 6, 7, 30};  // differs only at the last position
  const std::size_t v = tiny_config().vocab_size;
  model.forward(acts, a.data(), nullptr, 1, 4);
  std::vector<float> logits_a(acts.logits.begin(), acts.logits.begin() + 3 * v);
  model.forward(acts, b.data(), nullptr, 1, 4);
  for (std::size_t i = 0; i < 3 * v; ++i) {
    EXPECT_FLOAT_EQ(acts.logits[i], logits_a[i]) << "position " << i / v;
  }
}

TEST(GptInference, MatchesBatchForwardLogits) {
  GptModel model = tiny_model(7);
  GptActivations acts;
  std::vector<Token> tokens = {2, 9, 17, 4, 33, 11};
  model.forward(acts, tokens.data(), nullptr, 1, tokens.size());

  GptInference inference(model);
  const std::size_t v = tiny_config().vocab_size;
  for (std::size_t t = 0; t < tokens.size(); ++t) {
    const std::vector<float>& logits = inference.step(tokens[t]);
    for (std::size_t j = 0; j < v; ++j) {
      EXPECT_NEAR(logits[j], acts.logits[t * v + j], 2e-4f)
          << "t=" << t << " vocab=" << j;
    }
  }
}

TEST(GptInference, ResetRestartsTheSequence) {
  GptModel model = tiny_model(7);
  GptInference inference(model);
  const std::vector<float> first = inference.step(3);
  inference.step(5);
  inference.reset();
  EXPECT_EQ(inference.position(), 0u);
  const std::vector<float>& again = inference.step(3);
  for (std::size_t j = 0; j < again.size(); ++j) EXPECT_FLOAT_EQ(again[j], first[j]);
}

TEST(GptInference, GuardsContextAndVocab) {
  GptModel model = tiny_model();
  GptInference inference(model);
  EXPECT_THROW(inference.step(-1), std::out_of_range);
  for (std::size_t t = 0; t < tiny_config().ctx_len; ++t) inference.step(1);
  EXPECT_THROW(inference.step(1), std::length_error);
  EXPECT_THROW(inference.prompt({}), std::invalid_argument);
}

TEST(GptEvaluate, HeldOutLossConvenienceRuns) {
  GptModel model = tiny_model();
  GptActivations acts;
  std::vector<Token> tokens(33);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    tokens[i] = static_cast<Token>(i % tiny_config().vocab_size);
  }
  const float loss = model.evaluate_loss(acts, tokens, 2, 16);
  EXPECT_GT(loss, 0.0f);
  EXPECT_THROW(model.evaluate_loss(acts, std::vector<Token>{1, 2}, 2, 16),
               std::invalid_argument);
}

}  // namespace
}  // namespace astromlab::nn
