// End-to-end pipeline at miniature scale: world construction, base/CPT/SFT
// training, evaluation under all three methods, and checkpoint/result
// caching semantics.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/experiment.hpp"
#include "core/study.hpp"

namespace astromlab::core {
namespace {

namespace fs = std::filesystem;

WorldConfig miniature_world() {
  WorldConfig config;
  config.kb.n_topics = 4;
  config.kb.entities_per_topic = 3;
  config.kb.facts_per_entity = 2;
  config.kb.seed = 71;
  config.mcq.questions_per_topic = 2;
  config.mcq.seed = 72;
  config.vocab_size = 512;
  config.ctx_len = 448;
  config.size_multiplier = 0.06;  // tiny corpora: seconds, not minutes
  config.seed = 73;
  return config;
}

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cache_ = fs::temp_directory_path() /
             ("astromlab_pipe_" + std::to_string(::getpid()));
    fs::remove_all(cache_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(cache_, ec);
  }
  fs::path cache_;
};

TEST_F(PipelineTest, EndToEndFamilyEvaluationWithCaching) {
  World world = build_world(miniature_world());
  EXPECT_EQ(world.mcqs.benchmark.size(), 8u);
  EXPECT_GT(world.tok.vocab_size(), 300u);

  Pipeline pipeline(world, cache_);

  // Base model trains and is cached.
  const nn::GptModel base = pipeline.base_model(Scale::kS7);
  EXPECT_EQ(base.config().ctx_len, world.config.ctx_len);
  std::size_t checkpoints = 0;
  for (const auto& entry : fs::directory_iterator(cache_ / "models")) {
    (void)entry;
    ++checkpoints;
  }
  EXPECT_EQ(checkpoints, 1u);

  // CPT extends the base; instruct applies SFT on top.
  const nn::GptModel cpt = pipeline.cpt_model(Scale::kS7, corpus::CptVariant::kAic);
  EXPECT_EQ(cpt.config(), base.config());
  const nn::GptModel instruct =
      pipeline.instruct_model(Scale::kS7, corpus::CptVariant::kAic, SftKind::kAstroLLaMA);
  EXPECT_EQ(instruct.config(), base.config());

  // CPT and SFT actually changed the weights.
  float cpt_delta = 0.0f, sft_delta = 0.0f;
  for (std::size_t i = 0; i < base.params().total_size(); i += 53) {
    cpt_delta += std::abs(cpt.params().params()[i] - base.params().params()[i]);
    sft_delta += std::abs(instruct.params().params()[i] - cpt.params().params()[i]);
  }
  EXPECT_GT(cpt_delta, 0.0f);
  EXPECT_GT(sft_delta, 0.0f);

  // Full family evaluation: all three methods produce sane summaries.
  const TripleScores scores =
      pipeline.evaluate_family(Scale::kS7, corpus::CptVariant::kAic, SftKind::kAstroLLaMA);
  EXPECT_TRUE(scores.has_instruct);
  for (const eval::ScoreSummary* summary :
       {&scores.token_base, &scores.token_instruct, &scores.full_instruct}) {
    EXPECT_EQ(summary->total, world.mcqs.benchmark.size());
    EXPECT_GE(summary->accuracy, 0.0);
    EXPECT_LE(summary->accuracy, 1.0);
    EXPECT_LE(summary->ci_low, summary->accuracy);
    EXPECT_GE(summary->ci_high, summary->accuracy);
  }

  // Re-evaluation hits the result cache and returns identical numbers.
  const TripleScores again =
      pipeline.evaluate_family(Scale::kS7, corpus::CptVariant::kAic, SftKind::kAstroLLaMA);
  EXPECT_DOUBLE_EQ(again.token_base.accuracy, scores.token_base.accuracy);
  EXPECT_DOUBLE_EQ(again.full_instruct.accuracy, scores.full_instruct.accuracy);

  // A fresh Pipeline over the same cache dir reuses the trained models and
  // cached results byte-for-byte.
  Pipeline reloaded(world, cache_);
  const nn::GptModel base_again = reloaded.base_model(Scale::kS7);
  for (std::size_t i = 0; i < base.params().total_size(); i += 101) {
    EXPECT_EQ(base_again.params().params()[i], base.params().params()[i]);
  }
  const TripleScores cached =
      reloaded.evaluate_family(Scale::kS7, corpus::CptVariant::kAic, SftKind::kAstroLLaMA);
  EXPECT_DOUBLE_EQ(cached.token_base.accuracy, scores.token_base.accuracy);

  // invalidate_results() forces re-evaluation (same models, same scores).
  reloaded.invalidate_results();
  const TripleScores recomputed =
      reloaded.evaluate_family(Scale::kS7, corpus::CptVariant::kAic, SftKind::kAstroLLaMA);
  EXPECT_DOUBLE_EQ(recomputed.token_base.accuracy, scores.token_base.accuracy);
}

TEST_F(PipelineTest, BaseOnlyEvaluationSkipsInstruct) {
  World world = build_world(miniature_world());
  Pipeline pipeline(world, cache_);
  const TripleScores scores = pipeline.evaluate_family(
      Scale::kS7, corpus::CptVariant::kAbstract, SftKind::kAstroLLaMA,
      /*evaluate_instruct=*/false);
  EXPECT_FALSE(scores.has_instruct);
  EXPECT_EQ(scores.token_base.total, world.mcqs.benchmark.size());
  EXPECT_EQ(scores.full_instruct.total, 0u);
}

TEST_F(PipelineTest, SftOverrideChangesModelKey) {
  World world = build_world(miniature_world());
  Pipeline pipeline(world, cache_);
  corpus::SftSpec override_spec = sft_data_spec(SftKind::kAstroLLaMA, world.config);
  override_spec.total_dialogues = 16;
  override_spec.astro_fraction = 1.0;
  pipeline.set_sft_spec_override(override_spec);
  const nn::GptModel overridden =
      pipeline.instruct_model(Scale::kS7, std::nullopt, SftKind::kAstroLLaMA);
  pipeline.clear_sft_spec_override();
  const nn::GptModel standard =
      pipeline.instruct_model(Scale::kS7, std::nullopt, SftKind::kAstroLLaMA);
  // Different SFT data -> different weights (and different cache entries).
  float delta = 0.0f;
  for (std::size_t i = 0; i < standard.params().total_size(); i += 53) {
    delta += std::abs(overridden.params().params()[i] - standard.params().params()[i]);
  }
  EXPECT_GT(delta, 0.0f);
}

}  // namespace
}  // namespace astromlab::core
