#include <gtest/gtest.h>

#include <cstdlib>

#include "util/cli.hpp"

namespace astromlab::util {
namespace {

ArgParser make_parser(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return ArgParser(static_cast<int>(args.size()), args.data());
}

TEST(ArgParser, EqualsForm) {
  const auto parser = make_parser({"--alpha=1", "--name=astro"});
  EXPECT_EQ(parser.get_int("alpha", 0), 1);
  EXPECT_EQ(parser.get_string("name", ""), "astro");
}

TEST(ArgParser, SpaceForm) {
  const auto parser = make_parser({"--steps", "42", "--lr", "0.5"});
  EXPECT_EQ(parser.get_int("steps", 0), 42);
  EXPECT_DOUBLE_EQ(parser.get_double("lr", 0.0), 0.5);
}

TEST(ArgParser, BareFlagIsTrue) {
  const auto parser = make_parser({"--verbose", "--quiet", "--last"});
  EXPECT_TRUE(parser.get_bool("verbose", false));
  EXPECT_TRUE(parser.get_bool("quiet", false));
  EXPECT_TRUE(parser.get_bool("last", false));
}

TEST(ArgParser, PositionalArguments) {
  const auto parser = make_parser({"input.txt", "--k=1", "output.txt"});
  ASSERT_EQ(parser.positional().size(), 2u);
  EXPECT_EQ(parser.positional()[0], "input.txt");
  EXPECT_EQ(parser.positional()[1], "output.txt");
}

TEST(ArgParser, FallbacksOnMissingAndMalformed) {
  const auto parser = make_parser({"--count=abc", "--frac=x.y"});
  EXPECT_EQ(parser.get_int("count", 7), 7);
  EXPECT_DOUBLE_EQ(parser.get_double("frac", 2.5), 2.5);
  EXPECT_EQ(parser.get_string("missing", "dflt"), "dflt");
  EXPECT_FALSE(parser.get_bool("missing", false));
}

TEST(ArgParser, BoolSpellings) {
  const auto parser =
      make_parser({"--a=1", "--b=true", "--c=YES", "--d=0", "--e=off", "--f=maybe"});
  EXPECT_TRUE(parser.get_bool("a", false));
  EXPECT_TRUE(parser.get_bool("b", false));
  EXPECT_TRUE(parser.get_bool("c", false));
  EXPECT_FALSE(parser.get_bool("d", true));
  EXPECT_FALSE(parser.get_bool("e", true));
  EXPECT_TRUE(parser.get_bool("f", true));  // unrecognised -> fallback
}

TEST(ArgParser, EnvironmentFallback) {
  ::setenv("ASTROMLAB_ENV_PROBE", "314", 1);
  const auto parser = make_parser({});
  EXPECT_EQ(parser.get_int("env-probe", 0), 314);
  ::unsetenv("ASTROMLAB_ENV_PROBE");
  EXPECT_EQ(parser.get_int("env-probe", 5), 5);
}

TEST(ArgParser, CliBeatsEnvironment) {
  ::setenv("ASTROMLAB_PRIORITY", "env", 1);
  const auto parser = make_parser({"--priority=cli"});
  EXPECT_EQ(parser.get_string("priority", ""), "cli");
  ::unsetenv("ASTROMLAB_PRIORITY");
}

TEST(ArgParser, UnconsumedKeysTracksWhatWasNeverRead) {
  const auto parser = make_parser({"--alpha=1", "--beta=2", "--gamma=3"});
  EXPECT_EQ(parser.get_int("alpha", 0), 1);
  EXPECT_EQ(parser.get_int("gamma", 0), 3);
  const std::vector<std::string> leftover = parser.unconsumed_keys();
  ASSERT_EQ(leftover.size(), 1u);
  EXPECT_EQ(leftover[0], "beta");
}

TEST(ArgParser, ReadingAFlagAfterTheFactStillCountsAsConsumed) {
  const auto parser = make_parser({"--alpha=1"});
  EXPECT_FALSE(parser.unconsumed_keys().empty());
  parser.get_int("alpha", 0);
  EXPECT_TRUE(parser.unconsumed_keys().empty());
}

TEST(ArgParser, FailOnUnconsumedPassesWhenEverythingIsRead) {
  const auto parser = make_parser({"--alpha=1"});
  parser.get_int("alpha", 0);
  parser.fail_on_unconsumed();  // must not exit
}

TEST(ArgParser, FailOnUnconsumedHonoursKnownKeysAndWildcards) {
  const auto parser =
      make_parser({"--smoke", "--benchmark_filter=GEMM", "--benchmark_repetitions=3"});
  parser.fail_on_unconsumed({"smoke", "benchmark_*"});  // must not exit
}

TEST(ArgParserDeathTest, FailOnUnconsumedExitsLoudlyOnTypos) {
  const auto parser = make_parser({"--retyr-max=3"});
  EXPECT_EXIT(parser.fail_on_unconsumed(), ::testing::ExitedWithCode(64),
              "unknown option --retyr-max");
}

}  // namespace
}  // namespace astromlab::util
