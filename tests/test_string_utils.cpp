#include <gtest/gtest.h>

#include "util/string_utils.hpp"

namespace astromlab::util {
namespace {

TEST(Split, KeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, SingleFieldWithoutSeparator) {
  const auto parts = split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(SplitWhitespace, DropsEmptyRuns) {
  const auto parts = split_whitespace("  alpha \t beta\n\ngamma ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "alpha");
  EXPECT_EQ(parts[1], "beta");
  EXPECT_EQ(parts[2], "gamma");
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("solid"), "solid");
}

TEST(Join, WithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(CaseConversion, Ascii) {
  EXPECT_EQ(to_lower("AsTrO-42"), "astro-42");
  EXPECT_EQ(to_upper("AsTrO-42"), "ASTRO-42");
}

TEST(PrefixSuffix, Checks) {
  EXPECT_TRUE(starts_with("AstroLLaMA", "Astro"));
  EXPECT_FALSE(starts_with("Astro", "AstroLLaMA"));
  EXPECT_TRUE(ends_with("model.ckpt", ".ckpt"));
  EXPECT_FALSE(ends_with("ckpt", "model.ckpt"));
  EXPECT_TRUE(contains("abcdef", "cde"));
  EXPECT_FALSE(contains("abcdef", "xyz"));
}

TEST(ReplaceAll, Basics) {
  EXPECT_EQ(replace_all("a%Eb%E", "%E", "X"), "aXbX");
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");  // non-overlapping, left to right
  EXPECT_EQ(replace_all("text", "", "x"), "text");  // empty needle is a no-op
  EXPECT_EQ(replace_all("abc", "b", ""), "ac");
}

TEST(FormatFixed, Decimals) {
  EXPECT_EQ(format_fixed(76.04, 1), "76.0");
  EXPECT_EQ(format_fixed(76.06, 1), "76.1");
  EXPECT_EQ(format_fixed(-1.5, 0), "-2");
  EXPECT_EQ(format_fixed(0.125, 3), "0.125");
}

TEST(Padding, RightAndLeft) {
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_right("abcdef", 3), "abc");
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_left("abcdef", 3), "abc");
}

TEST(ToHex, SixteenDigits) {
  EXPECT_EQ(to_hex(0), "0000000000000000");
  EXPECT_EQ(to_hex(0xDEADBEEFull), "00000000deadbeef");
  EXPECT_EQ(to_hex(~0ull), "ffffffffffffffff");
}

}  // namespace
}  // namespace astromlab::util
