#include <gtest/gtest.h>

#include "json/json.hpp"

namespace astromlab::json {
namespace {

TEST(Parse, Scalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse("-3.25").as_number(), -3.25);
  EXPECT_DOUBLE_EQ(parse("1e3").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(parse("2.5E-2").as_number(), 0.025);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(Parse, StringEscapes) {
  EXPECT_EQ(parse(R"("a\nb\t\"c\"\\")").as_string(), "a\nb\t\"c\"\\");
  EXPECT_EQ(parse(R"("A")").as_string(), "A");
  EXPECT_EQ(parse(R"("é")").as_string(), "\xC3\xA9");        // é
  EXPECT_EQ(parse(R"("😀")").as_string(), "\xF0\x9F\x98\x80");  // 😀
}

TEST(Parse, NestedStructure) {
  const Value v = parse(R"({"a": [1, 2, {"b": true}], "c": null})");
  ASSERT_TRUE(v.is_object());
  const Value* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_DOUBLE_EQ(a->items()[0].as_number(), 1.0);
  EXPECT_TRUE(a->items()[2].find("b")->as_bool());
  EXPECT_TRUE(v.find("c")->is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Parse, ObjectOrderPreserved) {
  const Value v = parse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_EQ(v.members().size(), 3u);
  EXPECT_EQ(v.members()[0].first, "z");
  EXPECT_EQ(v.members()[1].first, "a");
  EXPECT_EQ(v.members()[2].first, "m");
}

TEST(Parse, ErrorsCarryOffsets) {
  EXPECT_THROW(parse(""), ParseError);
  EXPECT_THROW(parse("{"), ParseError);
  EXPECT_THROW(parse("[1,]"), ParseError);
  EXPECT_THROW(parse("{\"a\" 1}"), ParseError);
  EXPECT_THROW(parse("nul"), ParseError);
  EXPECT_THROW(parse("1 2"), ParseError);  // trailing content
  EXPECT_THROW(parse("\"unterminated"), ParseError);
  EXPECT_THROW(parse("\"bad\\q\""), ParseError);
  try {
    parse("[1, x]");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_GT(e.offset(), 0u);
  }
}

TEST(ParsePrefix, StopsAfterValue) {
  const std::string text = R"(  {"ANSWER": "B"}  and some trailing prose)";
  std::size_t offset = 0;
  const Value v = parse_prefix(text, offset);
  EXPECT_EQ(v.get_string("ANSWER", ""), "B");
  EXPECT_EQ(text.substr(offset, 4), "  an");
}

TEST(Dump, CompactRoundTrip) {
  const char* doc = R"({"a":[1,2.5,"x"],"b":{"c":null,"d":false}})";
  EXPECT_EQ(parse(doc).dump(), doc);
}

TEST(Dump, IndentedContainsNewlines) {
  Value obj = Value::object();
  obj.set("k", Value(1));
  const std::string pretty = obj.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(parse(pretty), obj);
}

TEST(Dump, EscapesControlCharacters) {
  const Value v(std::string("a\x01""b\n"));
  EXPECT_EQ(v.dump(), "\"a\\u0001b\\n\"");
}

TEST(Dump, IntegersRenderWithoutDecimalPoint) {
  EXPECT_EQ(Value(42).dump(), "42");
  EXPECT_EQ(Value(-3.0).dump(), "-3");
  EXPECT_EQ(Value(0.5).dump(), "0.5");
}

TEST(ValueApi, TypedGetters) {
  Value obj = Value::object();
  obj.set("s", Value("text"));
  obj.set("n", Value(1.5));
  obj.set("b", Value(true));
  EXPECT_EQ(obj.get_string("s", "d"), "text");
  EXPECT_EQ(obj.get_string("n", "d"), "d");  // type mismatch -> fallback
  EXPECT_DOUBLE_EQ(obj.get_number("n", 0), 1.5);
  EXPECT_TRUE(obj.get_bool("b", false));
  EXPECT_FALSE(obj.get_bool("missing", false));
}

TEST(ValueApi, SetReplacesInPlace) {
  Value obj = Value::object();
  obj.set("k", Value(1));
  obj.set("j", Value(2));
  obj.set("k", Value(3));
  ASSERT_EQ(obj.members().size(), 2u);
  EXPECT_EQ(obj.members()[0].first, "k");
  EXPECT_DOUBLE_EQ(obj.members()[0].second.as_number(), 3.0);
}

}  // namespace
}  // namespace astromlab::json
