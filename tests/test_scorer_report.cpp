#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "eval/report.hpp"
#include "eval/scorer.hpp"
#include "util/rng.hpp"

namespace astromlab::eval {
namespace {

QuestionResult qr(int predicted, int correct, corpus::Tier tier = corpus::Tier::kCanonical,
                  ExtractionMethod method = ExtractionMethod::kFailed) {
  QuestionResult result;
  result.predicted = predicted;
  result.correct = correct;
  result.tier = tier;
  result.method = method;
  return result;
}

TEST(Scorer, AccuracyAndCounts) {
  std::vector<QuestionResult> results = {qr(0, 0), qr(1, 1), qr(2, 3), qr(-1, 2)};
  const ScoreSummary summary = summarize(results);
  EXPECT_EQ(summary.total, 4u);
  EXPECT_EQ(summary.correct, 2u);
  EXPECT_DOUBLE_EQ(summary.accuracy, 0.5);
  EXPECT_EQ(summary.unanswered, 1u);
}

TEST(Scorer, AnsweredAccuracyExcludesUnanswered) {
  // 2 correct of 3 answered; the watchdog-degraded (-1) question counts
  // against overall accuracy but not against answered_accuracy.
  std::vector<QuestionResult> results = {qr(0, 0), qr(1, 1), qr(2, 3), qr(-1, 2)};
  const ScoreSummary summary = summarize(results);
  EXPECT_DOUBLE_EQ(summary.accuracy, 0.5);
  EXPECT_NEAR(summary.answered_accuracy, 2.0 / 3.0, 1e-12);

  std::vector<QuestionResult> all_unanswered = {qr(-1, 0), qr(-1, 1)};
  const ScoreSummary none = summarize(all_unanswered);
  EXPECT_EQ(none.unanswered, 2u);
  EXPECT_DOUBLE_EQ(none.answered_accuracy, 0.0);
}

TEST(Scorer, EmptyResultsAreSafe) {
  const ScoreSummary summary = summarize({});
  EXPECT_EQ(summary.total, 0u);
  EXPECT_DOUBLE_EQ(summary.accuracy, 0.0);
}

TEST(Scorer, TierBreakdown) {
  std::vector<QuestionResult> results = {
      qr(0, 0, corpus::Tier::kCanonical), qr(1, 0, corpus::Tier::kCanonical),
      qr(2, 2, corpus::Tier::kFrontier), qr(3, 2, corpus::Tier::kFrontier),
      qr(2, 2, corpus::Tier::kFrontier)};
  const ScoreSummary summary = summarize(results);
  EXPECT_DOUBLE_EQ(summary.canonical_accuracy, 0.5);
  EXPECT_NEAR(summary.frontier_accuracy, 2.0 / 3.0, 1e-12);
  EXPECT_EQ(summary.frontier_total, 3u);
}

TEST(Scorer, ExtractionMethodCounts) {
  std::vector<QuestionResult> results = {
      qr(0, 0, corpus::Tier::kCanonical, ExtractionMethod::kJson),
      qr(0, 0, corpus::Tier::kCanonical, ExtractionMethod::kJson),
      qr(0, 0, corpus::Tier::kCanonical, ExtractionMethod::kRegex),
      qr(0, 0, corpus::Tier::kCanonical, ExtractionMethod::kInterpreter)};
  const ScoreSummary summary = summarize(results);
  EXPECT_EQ(summary.json_extractions, 2u);
  EXPECT_EQ(summary.regex_extractions, 1u);
  EXPECT_EQ(summary.interpreter_extractions, 1u);
}

TEST(Scorer, BootstrapCiBracketsAccuracyAndIsDeterministic) {
  std::vector<QuestionResult> results;
  for (int i = 0; i < 100; ++i) results.push_back(qr(i % 4 == 0 ? 0 : 1, 0));
  const ScoreSummary a = summarize(results, 7);
  const ScoreSummary b = summarize(results, 7);
  EXPECT_DOUBLE_EQ(a.ci_low, b.ci_low);
  EXPECT_DOUBLE_EQ(a.ci_high, b.ci_high);
  EXPECT_LE(a.ci_low, a.accuracy);
  EXPECT_GE(a.ci_high, a.accuracy);
  // ~25% accuracy over n=100: the 95% CI half-width is ~8.5 points.
  EXPECT_NEAR(a.ci_high - a.ci_low, 0.17, 0.06);
}

TEST(Scorer, CanonicalTotalIsSurfaced) {
  std::vector<QuestionResult> results = {
      qr(0, 0, corpus::Tier::kCanonical), qr(1, 0, corpus::Tier::kCanonical),
      qr(2, 2, corpus::Tier::kFrontier)};
  const ScoreSummary summary = summarize(results);
  EXPECT_EQ(summary.canonical_total, 2u);
  EXPECT_EQ(summary.frontier_total, 1u);
  EXPECT_EQ(summarize({}).canonical_total, 0u);
}

TEST(Scorer, BootstrapZeroResamplesCollapsesCiToPointEstimate) {
  // resamples=0 used to index samples[size-1] of an EMPTY vector.
  std::vector<QuestionResult> results = {qr(0, 0), qr(1, 0), qr(2, 2), qr(3, 3)};
  const ScoreSummary summary = summarize(results, 7, /*bootstrap_resamples=*/0);
  EXPECT_DOUBLE_EQ(summary.ci_low, summary.accuracy);
  EXPECT_DOUBLE_EQ(summary.ci_high, summary.accuracy);
}

TEST(Scorer, BootstrapSingleResampleIsSafe) {
  std::vector<QuestionResult> results = {qr(0, 0), qr(1, 0)};
  const ScoreSummary summary = summarize(results, 7, /*bootstrap_resamples=*/1);
  // One sample: both bounds collapse onto it and stay ordered.
  EXPECT_DOUBLE_EQ(summary.ci_low, summary.ci_high);
  EXPECT_LE(summary.ci_low, summary.ci_high);
}

TEST(Scorer, BootstrapCiUsesNearestRankIndices) {
  // At the default 1000 resamples the bounds must be the 25th and 975th
  // order statistics (indices 24 / 974) — the old truncation picked the
  // 976th element for the upper bound (one past the 97.5th percentile),
  // so ci_high could only move up. Verify against a direct replay of the
  // resampling loop.
  std::vector<QuestionResult> results;
  for (int i = 0; i < 40; ++i) results.push_back(qr(i % 3 == 0 ? 0 : 1, 0));
  const std::uint64_t seed = 11;
  const std::size_t resamples = 1000;
  util::Rng rng(seed);
  std::vector<double> samples;
  for (std::size_t b = 0; b < resamples; ++b) {
    std::size_t hits = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (results[static_cast<std::size_t>(rng.next_below(results.size()))].is_correct()) {
        ++hits;
      }
    }
    samples.push_back(static_cast<double>(hits) / static_cast<double>(results.size()));
  }
  std::sort(samples.begin(), samples.end());
  const ScoreSummary summary = summarize(results, seed, resamples);
  EXPECT_DOUBLE_EQ(summary.ci_low, samples[24]);
  EXPECT_DOUBLE_EQ(summary.ci_high, samples[974]);
}

TEST(Percent, OneDecimal) {
  EXPECT_EQ(percent(0.7604), "76.0");
  EXPECT_EQ(percent(0.413999), "41.4");
}

ModelRow row(const std::string& name, double fi, double ti, double tb, bool native,
             const std::string& baseline, const std::string& series = "Series A") {
  ModelRow r;
  r.name = name;
  r.series = series;
  r.full_instruct = fi;
  r.token_instruct = ti;
  r.token_base = tb;
  r.source = native ? "Meta" : "AstroMLab";
  r.reference = "This Study";
  r.is_native = native;
  r.baseline = baseline;
  return r;
}

TEST(TrendArrow, ThresholdsMatchPaperNotation) {
  EXPECT_EQ(trend_arrow(76.0, 73.9), "^");
  EXPECT_EQ(trend_arrow(44.3, 51.3), "v");
  EXPECT_EQ(trend_arrow(71.9, 72.0), "~");
  EXPECT_EQ(trend_arrow(-1.0, 70.0), " ");
  EXPECT_EQ(trend_arrow(70.0, -1.0), " ");
}

TEST(Table1, ContainsRowsArrowsAndSections) {
  // Names avoid the arrow glyphs '^'/'v' so row scans below are exact.
  const std::vector<ModelRow> rows = {
      row("Plain-X", 70.7, 71.4, 73.9, true, ""),
      row("Astro-X", 64.7, 75.4, 76.0, false, "Plain-X"),
  };
  const std::string table = render_table1(rows);
  EXPECT_NE(table.find("Plain-X"), std::string::npos);
  EXPECT_NE(table.find("Astro-X"), std::string::npos);
  EXPECT_NE(table.find("Series A"), std::string::npos);
  EXPECT_NE(table.find("76.0 ^"), std::string::npos);   // token base improved
  EXPECT_NE(table.find("64.7 v"), std::string::npos);   // full instruct regressed
  // Native rows carry no arrows.
  const std::size_t native_line = table.find("Plain-X");
  const std::size_t native_end = table.find('\n', native_line);
  const std::string native_row = table.substr(native_line, native_end - native_line);
  EXPECT_EQ(native_row.find('^'), std::string::npos);
  EXPECT_EQ(native_row.find('v'), std::string::npos);
}

TEST(Table1, UnansweredColumnRendered) {
  ModelRow with_timeouts = row("Timeout-X", 50.0, 60.0, 70.0, true, "");
  with_timeouts.unanswered = 3;
  const std::string table = render_table1({with_timeouts});
  EXPECT_NE(table.find("Unansw"), std::string::npos);
  const std::size_t line = table.find("Timeout-X");
  const std::string row_text = table.substr(line, table.find('\n', line) - line);
  EXPECT_NE(row_text.find('3'), std::string::npos);
}

TEST(Table1, MissingScoresRenderAsDash) {
  const std::vector<ModelRow> rows = {
      row("Native-X", 50.3, 62.6, 51.3, true, ""),
      row("Abstract-Only", -1.0, -1.0, 43.5, false, "Native-X"),
  };
  const std::string table = render_table1(rows);
  const std::size_t line = table.find("Abstract-Only");
  const std::string row_text = table.substr(line, table.find('\n', line) - line);
  EXPECT_NE(row_text.find('-'), std::string::npos);
  EXPECT_NE(row_text.find("43.5 v"), std::string::npos);
}

TEST(Table1, CanonicalAndLatencyColumnsRendered) {
  ModelRow timed = row("Timed-X", 50.0, 60.0, 70.0, true, "");
  timed.canonical_total = 42;
  timed.latency_p95_ms = 123.4;
  ModelRow cached = row("Cached-X", 50.0, 60.0, 70.0, true, "");
  const std::string table = render_table1({timed, cached});
  EXPECT_NE(table.find("Canon"), std::string::npos);
  EXPECT_NE(table.find("P95ms"), std::string::npos);
  const std::size_t timed_line = table.find("Timed-X");
  const std::string timed_row =
      table.substr(timed_line, table.find('\n', timed_line) - timed_line);
  EXPECT_NE(timed_row.find("42"), std::string::npos);
  EXPECT_NE(timed_row.find("123.4"), std::string::npos);
  // A fully cache-replayed row renders '-' rather than a stale zero.
  const std::size_t cached_line = table.find("Cached-X");
  const std::string cached_row =
      table.substr(cached_line, table.find('\n', cached_line) - cached_line);
  EXPECT_EQ(cached_row.find("123.4"), std::string::npos);
}

TEST(Csv, LatencyAndCanonicalColumnsAppendedAtLineEnd) {
  ModelRow timed = row("Timed-X", 50.0, 60.0, 70.0, true, "");
  timed.canonical_total = 42;
  timed.latency_p50_ms = 10.0;
  timed.latency_p95_ms = 20.0;
  timed.latency_p99_ms = 30.0;
  const std::string csv = render_csv({timed});
  EXPECT_NE(csv.find("canonical_total,latency_p50_ms,latency_p95_ms,latency_p99_ms,"
                     "shed,cache_evictions\n"),
            std::string::npos);
  EXPECT_NE(csv.find(",42,10.00,20.00,30.00,0,0\n"), std::string::npos);
  // Latencies default to "no fresh timing" and render as empty cells.
  const std::string empty_csv = render_csv({row("Plain-X", 50.0, 60.0, 70.0, true, "")});
  EXPECT_NE(empty_csv.find(",0,,,,0,0\n"), std::string::npos);
}

TEST(Fig1, PlacesSymbolsAndBaseline) {
  const std::vector<ModelRow> rows = {
      row("Native-X", 70.0, 71.0, 74.0, true, ""),
      row("Astro-X", 60.0, 75.0, 76.0, false, "Native-X"),
  };
  const std::string fig = render_fig1(rows);
  EXPECT_NE(fig.find('F'), std::string::npos);
  EXPECT_NE(fig.find('I'), std::string::npos);
  EXPECT_NE(fig.find('B'), std::string::npos);
  EXPECT_NE(fig.find('|'), std::string::npos);
  EXPECT_NE(fig.find("(% score)"), std::string::npos);
  // Astro-X line: F (60) must be left of B (76).
  const std::size_t line_start = fig.find("Astro-X");
  const std::string line = fig.substr(line_start, fig.find('\n', line_start) - line_start);
  EXPECT_LT(line.find('F'), line.find('B'));
}

TEST(Fig1, ClampsOutOfRangeScores) {
  const std::vector<ModelRow> rows = {row("Weird", 5.0, 99.0, 50.0, true, "")};
  const std::string fig = render_fig1(rows, 20.0, 90.0);
  EXPECT_NE(fig.find("Weird"), std::string::npos);  // no crash, rendered
}

TEST(Csv, OneLinePerModelWithEmptyForMissing) {
  const std::vector<ModelRow> rows = {
      row("A-Model", 50.0, 60.0, 70.0, true, ""),
      row("B-Model", -1.0, -1.0, 43.5, false, "A-Model"),
  };
  const std::string csv = render_csv(rows);
  EXPECT_NE(csv.find("model,series,full_instruct,unanswered"), std::string::npos);
  EXPECT_NE(csv.find("A-Model,Series A,50.00,0,60.00,70.00,Meta,This Study"),
            std::string::npos);
  EXPECT_NE(csv.find("B-Model,Series A,,,,43.50,AstroMLab,This Study"), std::string::npos);
}

}  // namespace
}  // namespace astromlab::eval
