#include <gtest/gtest.h>

#include <set>

#include "corpus/paper_generator.hpp"

namespace astromlab::corpus {
namespace {

KnowledgeBase make_kb() {
  KbConfig config;
  config.n_topics = 5;
  config.entities_per_topic = 4;
  config.facts_per_entity = 2;
  config.seed = 9;
  return KnowledgeBase::generate(config);
}

PaperGenConfig default_config() {
  PaperGenConfig config;
  config.papers_per_topic = 2;
  config.seed = 3;
  return config;
}

TEST(PaperGenerator, EveryFactIsRealisedInSomePaper) {
  const KnowledgeBase kb = make_kb();
  PaperGenerator generator(kb, default_config());
  const auto papers = generator.generate_all();
  std::set<std::size_t> realised;
  for (const SyntheticPaper& paper : papers) {
    for (std::size_t fact : paper.fact_indices) realised.insert(fact);
  }
  EXPECT_EQ(realised.size(), kb.facts().size());
}

TEST(PaperGenerator, PapersHaveAllSections) {
  const KnowledgeBase kb = make_kb();
  PaperGenerator generator(kb, default_config());
  for (const SyntheticPaper& paper : generator.generate_all()) {
    EXPECT_FALSE(paper.title.empty());
    EXPECT_NE(paper.abstract_text.find("Abstract."), std::string::npos);
    EXPECT_NE(paper.introduction.find("Introduction."), std::string::npos);
    EXPECT_FALSE(paper.body.empty());
    EXPECT_NE(paper.conclusion.find("Conclusions."), std::string::npos);
  }
}

TEST(PaperGenerator, ConclusionStatesEveryPaperFact) {
  const KnowledgeBase kb = make_kb();
  PaperGenerator generator(kb, default_config());
  for (const SyntheticPaper& paper : generator.generate_all()) {
    for (std::size_t fact_index : paper.fact_indices) {
      const Fact& fact = kb.facts()[fact_index];
      // The value string must appear in the conclusion (every fact is
      // restated there with some phrasing).
      EXPECT_NE(paper.conclusion.find(kb.value_text(fact)), std::string::npos)
          << paper.title;
    }
  }
}

TEST(PaperGenerator, VariantTokenVolumesAreOrdered) {
  const KnowledgeBase kb = make_kb();
  PaperGenerator generator(kb, default_config());
  const auto papers = generator.generate_all();
  const std::string abstracts = PaperGenerator::render_abstract(papers);
  const std::string aic = PaperGenerator::render_aic(papers);
  const std::string full = PaperGenerator::render_full_text(papers);
  const std::string summary = generator.render_summary(papers);
  EXPECT_LT(abstracts.size(), aic.size());
  EXPECT_LT(aic.size(), full.size());
  // Summaries are fact-dense: smaller than AIC but still fact-complete.
  EXPECT_LT(summary.size(), aic.size());
}

TEST(PaperGenerator, SummaryIsFactComplete) {
  const KnowledgeBase kb = make_kb();
  PaperGenerator generator(kb, default_config());
  const auto papers = generator.generate_all();
  const std::string summary = generator.render_summary(papers);
  for (const Fact& fact : kb.facts()) {
    EXPECT_NE(summary.find(kb.value_text(fact)), std::string::npos)
        << "fact value missing from summary";
  }
}

TEST(PaperGenerator, AbstractCoversOnlyHeadlineFacts) {
  const KnowledgeBase kb = make_kb();
  PaperGenerator generator(kb, default_config());
  const auto papers = generator.generate_all();
  // Abstracts realise roughly half of each paper's facts, so across the
  // corpus the abstract text must be missing at least one fact value.
  const std::string abstracts = PaperGenerator::render_abstract(papers);
  std::size_t missing = 0;
  for (const Fact& fact : kb.facts()) {
    if (abstracts.find(kb.value_text(fact)) == std::string::npos) ++missing;
  }
  EXPECT_GT(missing, 0u);
}

TEST(PaperGenerator, DebrisRateInjectsMarkup) {
  const KnowledgeBase kb = make_kb();
  PaperGenConfig noisy = default_config();
  noisy.debris_rate = 0.5;
  PaperGenerator generator(kb, noisy);
  const std::string full = PaperGenerator::render_full_text(generator.generate_all());
  EXPECT_NE(full.find('\\'), std::string::npos);  // LaTeX debris present

  PaperGenConfig clean = default_config();
  clean.debris_rate = 0.0;
  PaperGenerator clean_generator(kb, clean);
  const std::string clean_full =
      PaperGenerator::render_full_text(clean_generator.generate_all());
  EXPECT_EQ(clean_full.find("\\begin"), std::string::npos);
}

TEST(OcrNoise, ZeroRateIsIdentity) {
  util::Rng rng(4);
  const std::string text = "pristine text 123";
  EXPECT_EQ(PaperGenerator::ocr_noise(text, 0.0, rng), text);
}

TEST(OcrNoise, CorruptsLettersButNotDigits) {
  util::Rng rng(5);
  std::string text;
  for (int i = 0; i < 200; ++i) text += "abcdef 123 ";
  const std::string noisy = PaperGenerator::ocr_noise(text, 0.2, rng);
  EXPECT_NE(noisy, text);
  // Digits are sacred (they carry fact values).
  std::size_t digits_in = 0, digits_out = 0;
  for (char c : text) digits_in += (c >= '0' && c <= '9');
  for (char c : noisy) digits_out += (c >= '0' && c <= '9');
  EXPECT_EQ(digits_in, digits_out);
}

TEST(PaperGenerator, DeterministicForSameSeed) {
  const KnowledgeBase kb = make_kb();
  PaperGenerator a(kb, default_config());
  PaperGenerator b(kb, default_config());
  EXPECT_EQ(PaperGenerator::render_aic(a.generate_all()),
            PaperGenerator::render_aic(b.generate_all()));
}

}  // namespace
}  // namespace astromlab::corpus
