#include <gtest/gtest.h>

#include "nn/data.hpp"

namespace astromlab::nn {
namespace {

TEST(StreamDataset, RejectsTinyStreams) {
  EXPECT_THROW(StreamDataset(std::vector<Token>{}), std::invalid_argument);
  EXPECT_THROW(StreamDataset(std::vector<Token>{1}), std::invalid_argument);
}

TEST(StreamDataset, TargetsAreShiftedInputs) {
  std::vector<Token> stream(100);
  for (std::size_t i = 0; i < stream.size(); ++i) stream[i] = static_cast<Token>(i);
  StreamDataset data(stream);
  EXPECT_EQ(data.epoch_tokens(), 100u);

  util::Rng rng(1);
  std::vector<Token> inputs, targets;
  data.next_batch(inputs, targets, 4, 10, rng);
  ASSERT_EQ(inputs.size(), 40u);
  ASSERT_EQ(targets.size(), 40u);
  for (std::size_t b = 0; b < 4; ++b) {
    for (std::size_t t = 0; t < 10; ++t) {
      // Stream is the identity sequence, so target == input + 1 everywhere
      // (modulo the end-of-stream clamp).
      EXPECT_EQ(targets[b * 10 + t], inputs[b * 10 + t] + 1);
    }
  }
}

TEST(StreamDataset, HandlesWindowLargerThanStream) {
  std::vector<Token> stream = {1, 2, 3};
  StreamDataset data(stream);
  util::Rng rng(2);
  std::vector<Token> inputs, targets;
  data.next_batch(inputs, targets, 1, 8, rng);
  ASSERT_EQ(inputs.size(), 8u);
  // Positions past the stream clamp to the final transition.
  EXPECT_EQ(inputs[7], 2);
  EXPECT_EQ(targets[7], 3);
}

TEST(StreamDataset, WindowsVaryAcrossDraws) {
  std::vector<Token> stream(5000);
  for (std::size_t i = 0; i < stream.size(); ++i) stream[i] = static_cast<Token>(i % 1000);
  StreamDataset data(stream);
  util::Rng rng(3);
  std::vector<Token> in1, tg1, in2, tg2;
  data.next_batch(in1, tg1, 1, 16, rng);
  data.next_batch(in2, tg2, 1, 16, rng);
  EXPECT_NE(in1, in2);  // ~1/5000 chance of collision
}

MaskedExample make_example(std::vector<Token> tokens, std::vector<int> mask) {
  MaskedExample example;
  example.tokens = std::move(tokens);
  for (int m : mask) example.loss_mask.push_back(m != 0);
  return example;
}

TEST(MaskedExampleDataset, ValidatesConstruction) {
  EXPECT_THROW(MaskedExampleDataset({}, 0), std::invalid_argument);
  MaskedExample bad;
  bad.tokens = {1, 2};
  bad.loss_mask = {true};
  EXPECT_THROW(MaskedExampleDataset({bad}, 0), std::invalid_argument);
}

TEST(MaskedExampleDataset, MasksPromptAndPadding) {
  // tokens:    10 11 12 13   (mask: prompt, prompt, answer, answer)
  const auto example = make_example({10, 11, 12, 13}, {0, 0, 1, 1});
  MaskedExampleDataset data({example}, /*pad=*/99);
  util::Rng rng(4);
  std::vector<Token> inputs, targets;
  data.next_batch(inputs, targets, 1, 6, rng);
  ASSERT_EQ(inputs.size(), 6u);
  // Inputs: example then pad.
  EXPECT_EQ(inputs[0], 10);
  EXPECT_EQ(inputs[3], 13);
  EXPECT_EQ(inputs[4], 99);
  EXPECT_EQ(inputs[5], 99);
  // Targets: position t trains on token t+1 iff mask[t+1].
  EXPECT_EQ(targets[0], kIgnoreTarget);  // token 11 is prompt
  EXPECT_EQ(targets[1], 12);             // token 12 is answer
  EXPECT_EQ(targets[2], 13);
  EXPECT_EQ(targets[3], kIgnoreTarget);  // past the example
  EXPECT_EQ(targets[4], kIgnoreTarget);
}

TEST(MaskedExampleDataset, TruncatesLongExamples) {
  std::vector<Token> tokens(20);
  std::vector<int> mask(20, 1);
  for (std::size_t i = 0; i < 20; ++i) tokens[i] = static_cast<Token>(i);
  const auto example = make_example(tokens, mask);
  MaskedExampleDataset data({example}, 0);
  util::Rng rng(5);
  std::vector<Token> inputs, targets;
  data.next_batch(inputs, targets, 1, 8, rng);
  ASSERT_EQ(inputs.size(), 8u);
  EXPECT_EQ(inputs[7], 7);
  EXPECT_EQ(targets[7], 8);  // target from within the (truncated) example
}

TEST(MaskedExampleDataset, EpochTokensSumsExamples) {
  const auto a = make_example({1, 2, 3}, {0, 1, 1});
  const auto b = make_example({4, 5}, {0, 1});
  MaskedExampleDataset data({a, b}, 0);
  EXPECT_EQ(data.epoch_tokens(), 5u);
  EXPECT_EQ(data.example_count(), 2u);
}

}  // namespace
}  // namespace astromlab::nn
