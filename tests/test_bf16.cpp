#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "tensor/bf16.hpp"
#include "util/rng.hpp"

namespace astromlab::tensor {
namespace {

TEST(Bf16, ExactValuesRoundTrip) {
  // Values representable in 8 mantissa bits survive exactly.
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, -0.25f, 2.0f, 128.0f, -0.0078125f}) {
    EXPECT_EQ(bf16_round(v), v) << v;
  }
}

TEST(Bf16, SignPreserved) {
  EXPECT_EQ(std::signbit(bf16_round(-0.0f)), true);
  EXPECT_LT(bf16_round(-3.14159f), 0.0f);
}

TEST(Bf16, RelativeErrorBounded) {
  util::Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const float v = static_cast<float>(rng.next_gaussian()) * 10.0f;
    if (v == 0.0f) continue;
    const float r = bf16_round(v);
    // 7 mantissa bits -> half-ULP relative error <= 2^-8.
    EXPECT_LE(std::abs(r - v) / std::abs(v), 1.0f / 256.0f) << v;
  }
}

TEST(Bf16, RoundToNearestEven) {
  // bf16 has 7 mantissa bits, so the ULP at 1.0 is 2^-7; 1.0 + 2^-8 is
  // exactly halfway between two bf16 values and must round to the even
  // mantissa (1.0).
  const float halfway = 1.0f + 1.0f / 256.0f;
  EXPECT_EQ(bf16_round(halfway), 1.0f);
  // Just above halfway rounds up to 1.0 + 2^-7.
  EXPECT_EQ(bf16_round(1.0f + 1.2f / 256.0f), 1.0f + 1.0f / 128.0f);
}

TEST(Bf16, InfinityPreserved) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(bf16_round(inf), inf);
  EXPECT_EQ(bf16_round(-inf), -inf);
}

TEST(Bf16, NanStaysNan) {
  EXPECT_TRUE(std::isnan(bf16_round(std::numeric_limits<float>::quiet_NaN())));
}

TEST(Bf16, LargeValuesDoNotOverflowToInf) {
  // Max finite bf16 ~ 3.39e38; a large-but-representable float stays finite.
  EXPECT_TRUE(std::isfinite(bf16_round(1e38f)));
}

TEST(Bf16, BitsLayout) {
  EXPECT_EQ(float_to_bf16(1.0f), 0x3F80);
  EXPECT_EQ(float_to_bf16(-2.0f), 0xC000);
  EXPECT_FLOAT_EQ(bf16_to_float(0x3F80), 1.0f);
}

}  // namespace
}  // namespace astromlab::tensor
