// Model zoo, recipes, cost model and value model.
#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "core/model_zoo.hpp"
#include "core/recipes.hpp"
#include "core/study.hpp"
#include "core/value_model.hpp"

namespace astromlab::core {
namespace {

TEST(ModelZoo, ScaleOrderingMatchesFamilies) {
  const WorldConfig world;
  const ScaleSpec s7 = scale_spec(Scale::kS7, world);
  const ScaleSpec s8 = scale_spec(Scale::kS8, world);
  const ScaleSpec s70 = scale_spec(Scale::kS70, world);
  // Capacity ordering: S70 > S8 > S7.
  EXPECT_GT(s70.arch.param_count(), s8.arch.param_count());
  EXPECT_GT(s8.arch.param_count(), s7.arch.param_count());
  // Pretraining-data quality: LLaMA-3 analog sees better coverage than the
  // LLaMA-2-7B analog (the 15T-token jump); S70 at least matches S8.
  EXPECT_GT(s8.pretrain.canonical_coverage, s7.pretrain.canonical_coverage);
  EXPECT_GE(s70.pretrain.canonical_coverage, s8.pretrain.canonical_coverage);
  EXPECT_GT(s8.pretrain.fact_repetitions, s7.pretrain.fact_repetitions);
}

TEST(ModelZoo, ArchitecturesAreValidAndShareWorldDims) {
  const WorldConfig world;
  for (Scale scale : {Scale::kS7, Scale::kS8, Scale::kS70}) {
    const ScaleSpec spec = scale_spec(scale, world);
    EXPECT_NO_THROW(spec.arch.validate());
    EXPECT_EQ(spec.arch.vocab_size, world.vocab_size);
    EXPECT_EQ(spec.arch.ctx_len, world.ctx_len);
  }
}

TEST(ModelZoo, SizeMultiplierScalesCorpusVolumes) {
  WorldConfig big;
  big.size_multiplier = 1.0;
  WorldConfig small = big;
  small.size_multiplier = 0.1;
  const ScaleSpec spec_big = scale_spec(Scale::kS8, big);
  const ScaleSpec spec_small = scale_spec(Scale::kS8, small);
  EXPECT_GT(spec_big.pretrain.filler_paragraphs, spec_small.pretrain.filler_paragraphs);
  EXPECT_GT(spec_big.pretrain.practice_exam_blocks,
            spec_small.pretrain.practice_exam_blocks);
}

TEST(ModelZoo, NamesMapToPaperFamilies) {
  EXPECT_STREQ(scale_paper_name(Scale::kS7), "LLaMA-2-7B");
  EXPECT_STREQ(scale_paper_name(Scale::kS8), "LLaMA-3-8B");
  EXPECT_STREQ(scale_paper_name(Scale::kS70), "LLaMA-2-70B");
  EXPECT_STREQ(scale_astro_name(Scale::kS70), "AstroLLaMA-2-70B");
  EXPECT_STREQ(scale_name(Scale::kS8), "S8");
}

TEST(ModelZoo, HashChangesWithConfig) {
  WorldConfig a, b;
  b.seed = a.seed + 1;
  util::HashBuilder ha, hb;
  a.add_to_hash(ha);
  b.add_to_hash(hb);
  EXPECT_NE(ha.digest(), hb.digest());

  util::HashBuilder hs7, hs8;
  scale_spec(Scale::kS7, a).add_to_hash(hs7);
  scale_spec(Scale::kS8, a).add_to_hash(hs8);
  EXPECT_NE(hs7.digest(), hs8.digest());
}

TEST(Recipes, CptCorpusVariantsDifferAsDocumented) {
  const WorldConfig world;
  const auto abstract = cpt_corpus_spec(corpus::CptVariant::kAbstract, world);
  const auto aic = cpt_corpus_spec(corpus::CptVariant::kAic, world);
  const auto summary = cpt_corpus_spec(corpus::CptVariant::kSummary, world);
  const auto ocr = cpt_corpus_spec(corpus::CptVariant::kFullTextOcr, world);
  // Abstracts are short -> more passes to reach a comparable budget.
  EXPECT_GT(abstract.passes, aic.passes);
  // The 2-7B-era LaTeX cleaning was noisy; summaries are clean.
  EXPECT_GT(aic.debris_rate, 0.0);
  EXPECT_DOUBLE_EQ(summary.debris_rate, 0.0);
  EXPECT_GT(ocr.ocr_noise_rate, 0.0);
}

TEST(Recipes, CptIsScaleInvariantAndOneEpoch) {
  const WorldConfig world;
  const auto r7 = cpt_recipe(Scale::kS7, world);
  const auto r70 = cpt_recipe(Scale::kS70, world);
  EXPECT_EQ(r7.lr, r70.lr);        // same dataset & recipe across scales (§III)
  EXPECT_DOUBLE_EQ(r7.epochs, 1.0);  // paper: one epoch
  EXPECT_DOUBLE_EQ(r7.warmup_ratio, 0.03);
}

TEST(Recipes, SftKindsDiffer) {
  const WorldConfig world;
  const auto small = sft_recipe(Scale::kS8, SftKind::kAstroLLaMA, world);
  const auto vendor = sft_recipe(Scale::kS8, SftKind::kVendor, world);
  EXPECT_LT(small.lr, vendor.lr);
  EXPECT_LT(small.epochs, vendor.epochs);
  EXPECT_DOUBLE_EQ(small.epochs, 1.0);  // paper: one SFT epoch

  const auto small_data = sft_data_spec(SftKind::kAstroLLaMA, world);
  const auto vendor_data = sft_data_spec(SftKind::kVendor, world);
  EXPECT_LT(small_data.total_dialogues, vendor_data.total_dialogues);
  EXPECT_NEAR(small_data.astro_fraction, 1.0 / 3.0, 1e-9);
}

TEST(CostModel, ReproducesPaperFiguresWithinFactorTwo) {
  const auto rows = reproduce_paper_costs();
  ASSERT_GE(rows.size(), 5u);
  for (const CostRow& row : rows) {
    if (row.reported_hours <= 0.0) continue;  // extrapolation rows
    EXPECT_GT(row.predicted_hours, row.reported_hours / 2.0) << row.stage;
    EXPECT_LT(row.predicted_hours, row.reported_hours * 2.0) << row.stage;
  }
}

TEST(CostModel, ExtrapolationsSpanPaperOrders) {
  // §VII: full-text CPT would need O(10^4)-O(10^5) A100 hours.
  const auto rows = reproduce_paper_costs();
  double extrapolation_min = 1e18, extrapolation_max = 0;
  for (const CostRow& row : rows) {
    if (row.reported_hours > 0.0) continue;
    extrapolation_min = std::min(extrapolation_min, row.predicted_hours);
    extrapolation_max = std::max(extrapolation_max, row.predicted_hours);
  }
  EXPECT_GE(extrapolation_min, 1e3);
  EXPECT_GE(extrapolation_max, 1e4);
  EXPECT_LT(extrapolation_max, 1e6);
}

TEST(CostModel, ScalesLinearly) {
  const GpuCostModel model;
  EXPECT_NEAR(model.train_gpu_hours(2e9, 1e9), 2.0 * model.train_gpu_hours(1e9, 1e9), 1e-9);
  EXPECT_NEAR(model.train_gpu_hours(1e9, 2e9), 2.0 * model.train_gpu_hours(1e9, 1e9), 1e-9);
  EXPECT_GT(model.inference_gpu_hours(1e9, 1e9), model.train_gpu_hours(1e9, 1e9) / 3.0);
}

TEST(CostModel, TableRendersEveryStage) {
  const auto rows = reproduce_paper_costs();
  const std::string table = render_cost_table(rows);
  for (const CostRow& row : rows) {
    EXPECT_NE(table.find(row.stage), std::string::npos) << row.stage;
  }
}

TEST(ValueModel, TenXPerConfiguredPoints) {
  const ValueModel model;
  EXPECT_NEAR(model.cost_efficiency_factor(3.5), 10.0, 1e-9);
  EXPECT_NEAR(model.cost_efficiency_factor(7.0), 100.0, 1e-6);
  EXPECT_NEAR(model.cost_efficiency_factor(0.0), 1.0, 1e-12);
  // The paper's 2.1-point gain: ~4x value, ~two-thirds of a tier gap.
  EXPECT_NEAR(model.cost_efficiency_factor(2.1), 3.98, 0.05);
  EXPECT_NEAR(model.fraction_of(2.1, paper_reference_tier_gap()), 2.0 / 3.0, 0.02);
}

TEST(ValueModel, FlagshipListMatchesPaper) {
  const auto flagships = paper_flagship_scores();
  ASSERT_EQ(flagships.size(), 3u);
  EXPECT_EQ(flagships[0].name, "Gemini-1.5-Pro-001");
  EXPECT_DOUBLE_EQ(flagships[0].score, 77.6);
  const std::string analysis = render_value_analysis(2.1, 76.0);
  EXPECT_NE(analysis.find("Gemini-1.5-Pro-001"), std::string::npos);
  EXPECT_NE(analysis.find("2.1"), std::string::npos);
}

TEST(PaperReference, RowsEncodeTableOne) {
  const auto rows = paper_reference_rows();
  ASSERT_EQ(rows.size(), 8u);
  const auto* astro70 = &rows.back();
  EXPECT_EQ(astro70->name, "AstroLLaMA-2-70B-AIC");
  EXPECT_DOUBLE_EQ(astro70->token_base, 76.0);
  EXPECT_DOUBLE_EQ(astro70->full_instruct, 64.7);
  // Abstract row has dashes for instruct columns.
  EXPECT_DOUBLE_EQ(rows[2].full_instruct, -1.0);
  EXPECT_DOUBLE_EQ(rows[2].token_base, 43.5);
}

}  // namespace
}  // namespace astromlab::core
