// Fault-isolated parallel evaluation supervisor: serial/parallel
// bit-parity (results and journal bytes), kill-and-resume determinism,
// transient-retry and permanent-degrade fault injection, deadlines,
// straggler cancellation, and concurrent journalling.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "corpus/corpora.hpp"
#include "eval/full_instruct.hpp"
#include "eval/journal.hpp"
#include "eval/supervisor.hpp"
#include "eval/token_method.hpp"
#include "util/fault_injection.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"

namespace astromlab {
namespace {

namespace fs = std::filesystem;
using eval::EvalRunOptions;
using eval::QuestionResult;
using eval::Supervisor;

class SupervisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::FaultInjector::instance().disarm();
    dir_ = fs::temp_directory_path() /
           ("astromlab_supervisor_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    util::FaultInjector::instance().disarm();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  fs::path dir_;
};

/// Fast deterministic retry policy so fault tests don't sleep for real.
util::RetryPolicy fast_retry(std::size_t max_retries = 2) {
  util::RetryPolicy policy;
  policy.max_retries = max_retries;
  policy.backoff_initial_ms = 0.01;
  policy.backoff_max_ms = 0.05;
  return policy;
}

/// Synthetic benchmark: each question's answer is a pure function of its
/// index, mirroring the determinism contract of the real evaluators.
QuestionResult ground_truth(std::size_t q) {
  QuestionResult r;
  r.correct = static_cast<int>(q % 4);
  r.tier = (q % 3 == 0) ? corpus::Tier::kFrontier : corpus::Tier::kCanonical;
  return r;
}

Supervisor::QuestionFn pure_fn() {
  return [](std::size_t q, std::size_t, const util::CancelToken&) {
    QuestionResult r = ground_truth(q);
    r.predicted = static_cast<int>((q * 7 + 1) % 4);
    r.method = eval::ExtractionMethod::kRegex;
    return r;
  };
}

std::vector<QuestionResult> prefilled(std::size_t n) {
  std::vector<QuestionResult> results(n);
  for (std::size_t q = 0; q < n; ++q) results[q] = ground_truth(q);
  return results;
}

std::vector<std::size_t> all_pending(std::size_t n) {
  std::vector<std::size_t> pending(n);
  for (std::size_t q = 0; q < n; ++q) pending[q] = q;
  return pending;
}

void expect_same_results(const std::vector<QuestionResult>& a,
                         const std::vector<QuestionResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t q = 0; q < a.size(); ++q) {
    EXPECT_EQ(a[q].predicted, b[q].predicted) << "question " << q;
    EXPECT_EQ(a[q].correct, b[q].correct) << "question " << q;
    EXPECT_EQ(a[q].tier, b[q].tier) << "question " << q;
    EXPECT_EQ(a[q].method, b[q].method) << "question " << q;
    EXPECT_EQ(a[q].retries, b[q].retries) << "question " << q;
    EXPECT_EQ(a[q].degraded, b[q].degraded) << "question " << q;
  }
}

TEST_F(SupervisorTest, ParallelMatchesSerialIncludingJournalBytes) {
  constexpr std::size_t kN = 37;

  auto serial_results = prefilled(kN);
  eval::EvalJournal serial_journal(dir_ / "serial.jsonl");
  Supervisor serial(EvalRunOptions{});
  serial.run(serial_results, all_pending(kN), pure_fn(), &serial_journal);

  EvalRunOptions par_opts;
  par_opts.workers = 4;
  auto parallel_results = prefilled(kN);
  eval::EvalJournal parallel_journal(dir_ / "parallel.jsonl");
  Supervisor parallel(par_opts);
  parallel.run(parallel_results, all_pending(kN), pure_fn(), &parallel_journal);

  expect_same_results(serial_results, parallel_results);
  // The in-order flush makes the parallel journal byte-identical, not just
  // semantically equal.
  EXPECT_EQ(util::read_text_file(dir_ / "serial.jsonl"),
            util::read_text_file(dir_ / "parallel.jsonl"));
  EXPECT_EQ(serial.stats().degraded_questions, 0u);
  EXPECT_EQ(parallel.stats().degraded_questions, 0u);
}

TEST_F(SupervisorTest, EmptyPendingIsANoOp) {
  std::vector<QuestionResult> results;
  EvalRunOptions opts;
  opts.workers = 4;
  Supervisor supervisor(opts);
  supervisor.run(results, {}, pure_fn(), nullptr);
  EXPECT_EQ(supervisor.stats().degraded_questions, 0u);
}

TEST_F(SupervisorTest, KilledParallelRunResumesToIdenticalJournal) {
  constexpr std::size_t kN = 24;
  constexpr std::size_t kKillAfter = 9;

  auto serial_results = prefilled(kN);
  eval::EvalJournal serial_journal(dir_ / "serial.jsonl");
  Supervisor serial(EvalRunOptions{});
  serial.run(serial_results, all_pending(kN), pure_fn(), &serial_journal);
  const std::string serial_bytes = util::read_text_file(dir_ / "serial.jsonl");

  // Simulate a kill after question kKillAfter: the journal holds exactly
  // the first kKillAfter lines (the in-order flush guarantees the prefix).
  {
    std::istringstream lines(serial_bytes);
    std::ofstream partial(dir_ / "resume.jsonl", std::ios::binary);
    std::string line;
    for (std::size_t i = 0; i < kKillAfter && std::getline(lines, line); ++i) {
      partial << line << '\n';
    }
  }

  // Resume in parallel: reload the journal, skip answered questions,
  // evaluate the rest with 4 workers.
  eval::EvalJournal resumed_journal(dir_ / "resume.jsonl");
  ASSERT_EQ(resumed_journal.size(), kKillAfter);
  auto resumed_results = prefilled(kN);
  std::vector<std::size_t> pending;
  for (std::size_t q = 0; q < kN; ++q) {
    if (const auto prior = resumed_journal.lookup(q)) {
      resumed_results[q] = *prior;
    } else {
      pending.push_back(q);
    }
  }
  ASSERT_EQ(pending.size(), kN - kKillAfter);
  EvalRunOptions opts;
  opts.workers = 4;
  Supervisor supervisor(opts);
  supervisor.run(resumed_results, pending, pure_fn(), &resumed_journal);

  expect_same_results(serial_results, resumed_results);
  EXPECT_EQ(serial_bytes, util::read_text_file(dir_ / "resume.jsonl"));
}

TEST_F(SupervisorTest, TransientFaultIsRetriedIdenticallyInSerialAndParallel) {
  constexpr std::size_t kN = 12;
  constexpr std::size_t kFlaky = 5;

  auto run = [&](std::size_t workers, const fs::path& journal_path, Supervisor* out) {
    util::FaultInjector::instance().disarm();
    util::FaultInjector::instance().arm_eval_transient(kFlaky, /*attempts=*/1);
    auto results = prefilled(kN);
    eval::EvalJournal journal(journal_path);
    EvalRunOptions opts;
    opts.workers = workers;
    opts.retry = fast_retry(2);
    *out = Supervisor(opts);
    out->run(results, all_pending(kN), pure_fn(), &journal);
    util::FaultInjector::instance().disarm();
    return results;
  };

  Supervisor serial(EvalRunOptions{});
  Supervisor parallel(EvalRunOptions{});
  const auto serial_results = run(0, dir_ / "serial.jsonl", &serial);
  const auto parallel_results = run(4, dir_ / "parallel.jsonl", &parallel);

  // The flaky question succeeded on retry and recorded it.
  EXPECT_EQ(serial_results[kFlaky].retries, 1);
  EXPECT_FALSE(serial_results[kFlaky].degraded);
  EXPECT_EQ(serial_results[kFlaky].predicted,
            static_cast<int>((kFlaky * 7 + 1) % 4));
  expect_same_results(serial_results, parallel_results);
  EXPECT_EQ(util::read_text_file(dir_ / "serial.jsonl"),
            util::read_text_file(dir_ / "parallel.jsonl"));
  EXPECT_EQ(serial.stats().retried_questions, 1u);
  EXPECT_EQ(serial.stats().total_retries, 1u);
  EXPECT_EQ(parallel.stats().retried_questions, 1u);
}

TEST_F(SupervisorTest, PermanentFaultDegradesToUnansweredInsteadOfAborting) {
  constexpr std::size_t kN = 10;
  constexpr std::size_t kBroken = 3;
  util::FaultInjector::instance().arm_eval_permanent(kBroken);

  auto results = prefilled(kN);
  EvalRunOptions opts;
  opts.workers = 4;
  opts.retry = fast_retry(2);
  Supervisor supervisor(opts);
  // Must not throw: one poisoned question cannot abort the study.
  supervisor.run(results, all_pending(kN), pure_fn(), nullptr);
  util::FaultInjector::instance().disarm();

  EXPECT_EQ(results[kBroken].predicted, -1);
  EXPECT_TRUE(results[kBroken].degraded);
  EXPECT_EQ(results[kBroken].method, eval::ExtractionMethod::kFailed);
  // Ground truth survives degradation, so scoring stays aligned.
  EXPECT_EQ(results[kBroken].correct, ground_truth(kBroken).correct);
  EXPECT_EQ(supervisor.stats().degraded_questions, 1u);

  const eval::ScoreSummary summary = eval::summarize(results);
  EXPECT_EQ(summary.total, kN);
  EXPECT_EQ(summary.degraded, 1u);
  EXPECT_GE(summary.unanswered, 1u);
}

TEST_F(SupervisorTest, ExhaustedTransientBudgetDegrades) {
  constexpr std::size_t kN = 6;
  constexpr std::size_t kFlaky = 2;
  // 5 transient faults against a budget of 1 retry: attempt + retry both
  // fail, then the question degrades.
  util::FaultInjector::instance().arm_eval_transient(kFlaky, /*attempts=*/5);

  auto results = prefilled(kN);
  EvalRunOptions opts;
  opts.retry = fast_retry(1);
  Supervisor supervisor(opts);
  supervisor.run(results, all_pending(kN), pure_fn(), nullptr);
  util::FaultInjector::instance().disarm();

  EXPECT_TRUE(results[kFlaky].degraded);
  EXPECT_EQ(results[kFlaky].predicted, -1);
  EXPECT_EQ(results[kFlaky].retries, 1);
  EXPECT_EQ(supervisor.stats().degraded_questions, 1u);
}

TEST_F(SupervisorTest, DeadlineCancelsInFlightWork) {
  constexpr std::size_t kN = 4;
  // The fn honours the token: it spins until cancelled, as the real
  // generation loops do per token / per KV-cache step.
  const Supervisor::QuestionFn slow_fn = [](std::size_t q, std::size_t,
                                            const util::CancelToken& cancel) {
    while (!cancel.cancelled()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    QuestionResult r = ground_truth(q);
    r.predicted = -1;
    r.method = eval::ExtractionMethod::kFailed;
    r.degraded = true;
    return r;
  };

  auto results = prefilled(kN);
  EvalRunOptions opts;
  opts.workers = 2;
  opts.question_deadline_seconds = 0.02;
  Supervisor supervisor(opts);
  supervisor.run(results, all_pending(kN), slow_fn, nullptr);

  for (std::size_t q = 0; q < kN; ++q) {
    EXPECT_EQ(results[q].predicted, -1) << q;
    EXPECT_TRUE(results[q].degraded) << q;
  }
  EXPECT_EQ(supervisor.stats().degraded_questions, kN);
}

TEST_F(SupervisorTest, StragglerMonitorCancelsOutlier) {
  constexpr std::size_t kN = 16;
  constexpr std::size_t kStraggler = 11;
  const Supervisor::QuestionFn fn = [](std::size_t q, std::size_t,
                                       const util::CancelToken& cancel) {
    if (q == kStraggler) {
      // Pathological question: only the straggler monitor can stop it.
      while (!cancel.cancelled()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      QuestionResult r = ground_truth(q);
      r.predicted = -1;
      r.method = eval::ExtractionMethod::kFailed;
      r.degraded = true;
      return r;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    QuestionResult r = ground_truth(q);
    r.predicted = static_cast<int>(q % 4);
    r.method = eval::ExtractionMethod::kRegex;
    return r;
  };

  auto results = prefilled(kN);
  EvalRunOptions opts;
  opts.workers = 4;
  opts.straggler_factor = 10.0;  // ~2ms median -> cancel after ~20ms
  opts.straggler_min_samples = 4;
  Supervisor supervisor(opts);
  supervisor.run(results, all_pending(kN), fn, nullptr);

  EXPECT_EQ(results[kStraggler].predicted, -1);
  EXPECT_TRUE(results[kStraggler].degraded);
  EXPECT_GE(supervisor.stats().stragglers_cancelled, 1u);
  for (std::size_t q = 0; q < kN; ++q) {
    if (q == kStraggler) continue;
    EXPECT_EQ(results[q].predicted, static_cast<int>(q % 4)) << q;
  }
}

TEST_F(SupervisorTest, JournalRecordIsThreadSafeAndOrderTolerant) {
  const fs::path path = dir_ / "concurrent.jsonl";
  constexpr std::size_t kN = 64;
  {
    eval::EvalJournal journal(path);
    std::vector<std::thread> threads;
    std::atomic<std::size_t> next{0};
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&] {
        for (;;) {
          const std::size_t q = next.fetch_add(1);
          if (q >= kN) return;
          QuestionResult r = ground_truth(q);
          r.predicted = static_cast<int>(q % 4);
          // Deliberately out-of-order across threads.
          journal.record(kN - 1 - q, r);
        }
      });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(journal.size(), kN);
  }
  // Every line survived intact (no torn/interleaved writes).
  eval::EvalJournal reloaded(path);
  EXPECT_EQ(reloaded.size(), kN);
  for (std::size_t q = 0; q < kN; ++q) {
    ASSERT_TRUE(reloaded.lookup(q).has_value()) << q;
  }
}

TEST_F(SupervisorTest, TornConcurrentAppendIsDroppedAndRepairedOnReload) {
  const fs::path path = dir_ / "torn.jsonl";
  {
    eval::EvalJournal journal(path);
    journal.record(0, ground_truth(0));
    journal.record(1, ground_truth(1));
    // The third append is torn mid-line (simulated kill during write).
    util::FaultInjector::instance().arm_truncate_write(1);
    journal.record(2, ground_truth(2));
    util::FaultInjector::instance().disarm();
  }
  {
    eval::EvalJournal reloaded(path);
    EXPECT_EQ(reloaded.size(), 2u);
    EXPECT_FALSE(reloaded.lookup(2).has_value());
    // The torn tail was truncated off, so a resumed append lands on a
    // clean line and survives the *next* reload too.
    reloaded.record(2, ground_truth(2));
  }
  eval::EvalJournal final_state(path);
  EXPECT_EQ(final_state.size(), 3u);
  EXPECT_TRUE(final_state.lookup(2).has_value());
}

// ---------------------------------------------------------------------------
// End-to-end parity through the real benchmark runners on a tiny world.

struct TinyWorld {
  corpus::KnowledgeBase kb;
  corpus::McqSplit mcqs;
  tokenizer::BpeTokenizer tok;
};

TinyWorld make_eval_world() {
  TinyWorld world;
  corpus::KbConfig kb_config;
  kb_config.n_topics = 4;
  kb_config.entities_per_topic = 3;
  kb_config.facts_per_entity = 2;
  kb_config.seed = 61;
  world.kb = corpus::KnowledgeBase::generate(kb_config);
  corpus::McqGenConfig mcq_config;
  mcq_config.questions_per_topic = 2;
  mcq_config.seed = 62;
  world.mcqs = corpus::generate_mcqs(world.kb, mcq_config);
  tokenizer::BpeTrainConfig tok_config;
  tok_config.vocab_size = 420;
  world.tok = tokenizer::BpeTokenizer::train(
      corpus::build_tokenizer_training_text(world.kb, world.mcqs.practice, 63), tok_config);
  return world;
}

nn::GptModel make_eval_model(const TinyWorld& world) {
  nn::GptConfig config;
  config.vocab_size = world.tok.vocab_size();
  config.ctx_len = 384;
  config.d_model = 24;
  config.n_heads = 2;
  config.n_layers = 1;
  config.d_ff = 48;
  nn::GptModel model(config);
  util::Rng rng(64);
  model.init_weights(rng);
  return model;
}

TEST_F(SupervisorTest, FullInstructParallelRunIsBitIdenticalToSerial) {
  const TinyWorld world = make_eval_world();
  const nn::GptModel model = make_eval_model(world);
  eval::FullInstructConfig config;
  config.max_new_tokens = 16;

  eval::EvalJournal serial_journal(dir_ / "fi_serial.jsonl");
  const auto serial = eval::run_full_instruct_benchmark(
      model, world.tok, world.mcqs.benchmark, config, &serial_journal);

  EvalRunOptions opts;
  opts.workers = 4;
  eval::EvalJournal parallel_journal(dir_ / "fi_parallel.jsonl");
  const auto parallel = eval::run_full_instruct_benchmark(
      model, world.tok, world.mcqs.benchmark, config, &parallel_journal, opts);

  expect_same_results(serial, parallel);
  EXPECT_EQ(util::read_text_file(dir_ / "fi_serial.jsonl"),
            util::read_text_file(dir_ / "fi_parallel.jsonl"));

  // Kill-and-resume: keep the first 3 journal lines, resume with workers.
  const std::string serial_bytes = util::read_text_file(dir_ / "fi_serial.jsonl");
  {
    std::istringstream lines(serial_bytes);
    std::ofstream partial(dir_ / "fi_resume.jsonl", std::ios::binary);
    std::string line;
    for (int i = 0; i < 3 && std::getline(lines, line); ++i) partial << line << '\n';
  }
  eval::EvalJournal resume_journal(dir_ / "fi_resume.jsonl");
  const auto resumed = eval::run_full_instruct_benchmark(
      model, world.tok, world.mcqs.benchmark, config, &resume_journal, opts);
  expect_same_results(serial, resumed);
  EXPECT_EQ(serial_bytes, util::read_text_file(dir_ / "fi_resume.jsonl"));
}

TEST_F(SupervisorTest, FullInstructInjectedTransientFaultKeepsParity) {
  const TinyWorld world = make_eval_world();
  const nn::GptModel model = make_eval_model(world);
  eval::FullInstructConfig config;
  config.max_new_tokens = 16;

  auto run = [&](std::size_t workers, const fs::path& path) {
    util::FaultInjector::instance().disarm();
    util::FaultInjector::instance().arm_eval_transient(1, /*attempts=*/1);
    eval::EvalJournal journal(path);
    EvalRunOptions opts;
    opts.workers = workers;
    opts.retry = fast_retry(2);
    const auto results = eval::run_full_instruct_benchmark(
        model, world.tok, world.mcqs.benchmark, config, &journal, opts);
    util::FaultInjector::instance().disarm();
    return results;
  };

  const auto serial = run(0, dir_ / "fi_serial.jsonl");
  const auto parallel = run(4, dir_ / "fi_parallel.jsonl");
  EXPECT_EQ(serial[1].retries, 1);
  EXPECT_FALSE(serial[1].degraded);
  expect_same_results(serial, parallel);
  EXPECT_EQ(util::read_text_file(dir_ / "fi_serial.jsonl"),
            util::read_text_file(dir_ / "fi_parallel.jsonl"));

  const eval::ScoreSummary summary = eval::summarize(serial);
  EXPECT_EQ(summary.retried, 1u);
}

TEST_F(SupervisorTest, TokenMethodParallelRunIsBitIdenticalToSerial) {
  const TinyWorld world = make_eval_world();
  const nn::GptModel model = make_eval_model(world);

  eval::EvalJournal serial_journal(dir_ / "tok_serial.jsonl");
  const auto serial =
      eval::run_token_benchmark(model, world.tok, world.mcqs.benchmark,
                                world.mcqs.practice, &serial_journal);

  EvalRunOptions opts;
  opts.workers = 4;
  eval::EvalJournal parallel_journal(dir_ / "tok_parallel.jsonl");
  const auto parallel = eval::run_token_benchmark(
      model, world.tok, world.mcqs.benchmark, world.mcqs.practice, &parallel_journal,
      eval::TokenMethodConfig{}, opts);

  expect_same_results(serial, parallel);
  EXPECT_EQ(util::read_text_file(dir_ / "tok_serial.jsonl"),
            util::read_text_file(dir_ / "tok_parallel.jsonl"));
}

TEST_F(SupervisorTest, TokenMethodDeadlineDegradesInFlight) {
  const TinyWorld world = make_eval_world();
  const nn::GptModel model = make_eval_model(world);

  eval::TokenMethodConfig config;
  config.max_seconds_per_question = 1e-9;  // fires during the prompt feed
  const auto results = eval::run_token_benchmark(
      model, world.tok, world.mcqs.benchmark, world.mcqs.practice, nullptr, config);

  for (std::size_t q = 0; q < results.size(); ++q) {
    EXPECT_EQ(results[q].predicted, -1) << q;
    EXPECT_TRUE(results[q].degraded) << q;
  }
  const eval::ScoreSummary summary = eval::summarize(results);
  EXPECT_EQ(summary.degraded, results.size());
  EXPECT_EQ(summary.unanswered, results.size());
}

}  // namespace
}  // namespace astromlab
