#include <gtest/gtest.h>

#include "corpus/chat_format.hpp"
#include "corpus/corpora.hpp"

namespace astromlab::corpus {
namespace {

KnowledgeBase make_kb() {
  KbConfig config;
  config.n_topics = 6;
  config.entities_per_topic = 4;
  config.facts_per_entity = 2;
  config.frontier_fraction = 0.2;
  config.seed = 13;
  return KnowledgeBase::generate(config);
}

McqSplit make_mcqs(const KnowledgeBase& kb) {
  McqGenConfig config;
  config.questions_per_topic = 3;
  config.seed = 14;
  return generate_mcqs(kb, config);
}

PretrainSpec small_spec() {
  PretrainSpec spec;
  spec.canonical_coverage = 1.0;
  spec.fact_repetitions = 2;
  spec.general_fact_count = 20;
  spec.filler_paragraphs = 30;
  spec.practice_exam_blocks = 10;
  spec.chat_warmup_dialogues = 5;
  spec.seed = 15;
  return spec;
}

TEST(PretrainCorpus, FullCoverageContainsEveryCanonicalFactValue) {
  const KnowledgeBase kb = make_kb();
  const McqSplit mcqs = make_mcqs(kb);
  const std::string corpus = build_pretrain_corpus(kb, mcqs.practice, small_spec());
  for (const Fact& fact : kb.facts()) {
    if (fact.tier != Tier::kCanonical) continue;
    // Entity name must co-occur in the text (value strings repeat across
    // facts, so check the entity which is unique).
    EXPECT_NE(corpus.find(kb.entity_of(fact).name), std::string::npos)
        << kb.entity_of(fact).name;
  }
}

TEST(PretrainCorpus, CoverageKnobExcludesFacts) {
  const KnowledgeBase kb = make_kb();
  const McqSplit mcqs = make_mcqs(kb);
  PretrainSpec spec = small_spec();
  spec.canonical_coverage = 0.3;
  spec.filler_paragraphs = 0;
  spec.practice_exam_blocks = 0;
  spec.chat_warmup_dialogues = 0;
  spec.general_fact_count = 0;
  const std::string corpus = build_pretrain_corpus(kb, mcqs.practice, spec);
  std::size_t present = 0, absent = 0;
  for (const Fact& fact : kb.facts()) {
    if (fact.tier != Tier::kCanonical) continue;
    // Covered facts are emitted via statement variant 0 (rep 0), so the
    // exact sentence is a reliable presence probe.
    const bool found = corpus.find(kb.statement(fact, 0)) != std::string::npos;
    (found ? present : absent) += 1;
  }
  EXPECT_GT(present, 0u);
  EXPECT_GT(absent, present);  // only ~30% covered
}

TEST(PretrainCorpus, ContainsExamHeaderAndChatMarkers) {
  const KnowledgeBase kb = make_kb();
  const McqSplit mcqs = make_mcqs(kb);
  const std::string corpus = build_pretrain_corpus(kb, mcqs.practice, small_spec());
  EXPECT_NE(corpus.find(kExamHeader), std::string::npos);
  EXPECT_NE(corpus.find("Answer: "), std::string::npos);
  EXPECT_NE(corpus.find("<|user|>"), std::string::npos);
  EXPECT_NE(corpus.find("<|assistant|>"), std::string::npos);
}

TEST(PretrainCorpus, DeterministicForSeed) {
  const KnowledgeBase kb = make_kb();
  const McqSplit mcqs = make_mcqs(kb);
  EXPECT_EQ(build_pretrain_corpus(kb, mcqs.practice, small_spec()),
            build_pretrain_corpus(kb, mcqs.practice, small_spec()));
  PretrainSpec other = small_spec();
  other.seed = 999;
  EXPECT_NE(build_pretrain_corpus(kb, mcqs.practice, small_spec()),
            build_pretrain_corpus(kb, mcqs.practice, other));
}

TEST(CptCorpus, VariantsProduceDistinctRegisters) {
  const KnowledgeBase kb = make_kb();
  CptSpec spec;
  spec.seed = 21;
  spec.papers_per_topic = 2;

  spec.variant = CptVariant::kAbstract;
  const std::string abstracts = build_cpt_corpus(kb, spec);
  spec.variant = CptVariant::kAic;
  const std::string aic = build_cpt_corpus(kb, spec);
  spec.variant = CptVariant::kSummary;
  const std::string summary = build_cpt_corpus(kb, spec);

  EXPECT_NE(abstracts, aic);
  EXPECT_NE(aic, summary);
  EXPECT_NE(summary.find("Summary of"), std::string::npos);
  EXPECT_EQ(abstracts.find("Introduction."), std::string::npos);
  EXPECT_NE(aic.find("Introduction."), std::string::npos);
  EXPECT_EQ(aic.find("Observations and analysis."), std::string::npos);  // body excluded
}

TEST(CptCorpus, PassesGrowTheStream) {
  const KnowledgeBase kb = make_kb();
  CptSpec one;
  one.variant = CptVariant::kAic;
  one.passes = 1;
  one.seed = 22;
  CptSpec two = one;
  two.passes = 2;
  const std::string single = build_cpt_corpus(kb, one);
  const std::string dual = build_cpt_corpus(kb, two);
  EXPECT_GT(dual.size(), single.size() * 1.7);
  // Later passes use fresh phrasings, not verbatim repetition.
  EXPECT_NE(dual.substr(single.size()), single);
}

TEST(CptCorpus, OcrVariantAppliesNoise) {
  const KnowledgeBase kb = make_kb();
  CptSpec spec;
  spec.variant = CptVariant::kFullTextOcr;
  spec.ocr_noise_rate = 0.05;
  spec.seed = 23;
  const std::string noisy = build_cpt_corpus(kb, spec);
  spec.ocr_noise_rate = 0.0;
  const std::string clean = build_cpt_corpus(kb, spec);
  EXPECT_NE(noisy, clean);
}

TEST(HeldoutText, NonEmptyAndDeterministic) {
  const KnowledgeBase kb = make_kb();
  const std::string a = build_heldout_text(kb, 31);
  EXPECT_GT(a.size(), 1000u);
  EXPECT_EQ(a, build_heldout_text(kb, 31));
  EXPECT_NE(a, build_heldout_text(kb, 32));
}

TEST(TokenizerText, CoversAllRegisters) {
  const KnowledgeBase kb = make_kb();
  const McqSplit mcqs = make_mcqs(kb);
  const std::string text = build_tokenizer_training_text(kb, mcqs.practice, 41);
  EXPECT_NE(text.find("ANSWER"), std::string::npos);       // JSON register
  EXPECT_NE(text.find(kExamHeader), std::string::npos);    // exam register
  EXPECT_NE(text.find("Abstract."), std::string::npos);    // paper register
  EXPECT_NE(text.find("<|user|>"), std::string::npos);     // chat register
}

}  // namespace
}  // namespace astromlab::corpus
