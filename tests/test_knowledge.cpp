#include <gtest/gtest.h>

#include <set>

#include "corpus/knowledge.hpp"
#include "corpus/lexicon.hpp"

namespace astromlab::corpus {
namespace {

KbConfig small_config() {
  KbConfig config;
  config.n_topics = 6;
  config.entities_per_topic = 4;
  config.facts_per_entity = 2;
  config.frontier_fraction = 0.25;
  config.seed = 7;
  return config;
}

TEST(Lexicon, ObjectNamesAreUniqueAndNonEmpty) {
  util::Rng rng(1);
  const auto names = Lexicon::object_names(200, rng);
  EXPECT_EQ(names.size(), 200u);
  std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), 200u);
  for (const auto& name : names) EXPECT_FALSE(name.empty());
}

TEST(Lexicon, PoolsAreNonTrivial) {
  EXPECT_GE(Lexicon::object_kinds().size(), 8u);
  EXPECT_GE(Lexicon::astro_filler().size(), 10u);
  EXPECT_GE(Lexicon::general_filler().size(), 8u);
  EXPECT_GE(Lexicon::latex_debris().size(), 4u);
}

TEST(Lexicon, GeneralEntityNamesHandleLargeRequests) {
  util::Rng rng(2);
  const auto names = Lexicon::general_entity_names(500, rng);
  EXPECT_EQ(names.size(), 500u);  // falls back to numbered names
}

TEST(KnowledgeBase, GeneratesRequestedCounts) {
  const KnowledgeBase kb = KnowledgeBase::generate(small_config());
  EXPECT_EQ(kb.entities().size(), 24u);
  EXPECT_EQ(kb.facts().size(), 48u);
  EXPECT_EQ(kb.topic_count(), 6u);
}

TEST(KnowledgeBase, EveryRelationHasAtLeastFourOptions) {
  for (const Relation& relation : KnowledgeBase::standard_relations()) {
    EXPECT_GE(relation.domain.options.size(), 4u) << relation.id;
    EXPECT_FALSE(relation.statement_templates.empty()) << relation.id;
    EXPECT_NE(relation.question_template.find("%E"), std::string::npos) << relation.id;
    for (const std::string& tmpl : relation.statement_templates) {
      EXPECT_NE(tmpl.find("%E"), std::string::npos) << relation.id;
      EXPECT_NE(tmpl.find("%V"), std::string::npos) << relation.id;
    }
  }
}

TEST(KnowledgeBase, OptionLengthsAreComparable) {
  // The paper's design principle: options can't be eliminated by length.
  for (const Relation& relation : KnowledgeBase::standard_relations()) {
    std::size_t min_len = 1000, max_len = 0;
    for (const std::string& option : relation.domain.options) {
      min_len = std::min(min_len, option.size());
      max_len = std::max(max_len, option.size());
    }
    EXPECT_LE(max_len, 2 * min_len + 12) << relation.id;
  }
}

TEST(KnowledgeBase, FactsPerEntityUseDistinctRelations) {
  const KnowledgeBase kb = KnowledgeBase::generate(small_config());
  for (std::size_t e = 0; e < kb.entities().size(); ++e) {
    std::set<std::size_t> relations;
    for (const Fact& fact : kb.facts()) {
      if (fact.entity == e) relations.insert(fact.relation);
    }
    EXPECT_EQ(relations.size(), small_config().facts_per_entity) << "entity " << e;
  }
}

TEST(KnowledgeBase, FrontierFractionIsApproximatelyRespected) {
  KbConfig config = small_config();
  config.n_topics = 40;  // more facts for a tighter estimate
  const KnowledgeBase kb = KnowledgeBase::generate(config);
  const auto frontier = kb.facts_in_tier(Tier::kFrontier);
  const double fraction =
      static_cast<double>(frontier.size()) / static_cast<double>(kb.facts().size());
  EXPECT_NEAR(fraction, config.frontier_fraction, 0.08);
}

TEST(KnowledgeBase, TopicPartitionIsConsistent) {
  const KnowledgeBase kb = KnowledgeBase::generate(small_config());
  std::size_t total = 0;
  for (std::size_t topic = 0; topic < kb.topic_count(); ++topic) {
    for (const Fact* fact : kb.facts_in_topic(topic)) {
      EXPECT_EQ(fact->topic, topic);
      EXPECT_EQ(kb.entity_of(*fact).topic, topic);
      ++total;
    }
  }
  EXPECT_EQ(total, kb.facts().size());
}

TEST(KnowledgeBase, StatementsRealiseEntityAndValue) {
  const KnowledgeBase kb = KnowledgeBase::generate(small_config());
  const Fact& fact = kb.facts().front();
  for (std::size_t variant = 0; variant < 5; ++variant) {
    const std::string statement = kb.statement(fact, variant);
    EXPECT_NE(statement.find(kb.entity_of(fact).name), std::string::npos);
    EXPECT_NE(statement.find(kb.value_text(fact)), std::string::npos);
    EXPECT_EQ(statement.find("%E"), std::string::npos);
    EXPECT_EQ(statement.find("%V"), std::string::npos);
  }
  const std::string question = kb.question(fact);
  EXPECT_NE(question.find(kb.entity_of(fact).name), std::string::npos);
  EXPECT_NE(question.find('?'), std::string::npos);
}

TEST(KnowledgeBase, DeterministicForSameSeed) {
  const KnowledgeBase a = KnowledgeBase::generate(small_config());
  const KnowledgeBase b = KnowledgeBase::generate(small_config());
  ASSERT_EQ(a.facts().size(), b.facts().size());
  for (std::size_t i = 0; i < a.facts().size(); ++i) {
    EXPECT_EQ(a.facts()[i].value, b.facts()[i].value);
    EXPECT_EQ(a.entities()[a.facts()[i].entity].name, b.entities()[b.facts()[i].entity].name);
  }
}

TEST(KnowledgeBase, ValidatesConfig) {
  KbConfig bad = small_config();
  bad.n_topics = 0;
  EXPECT_THROW(KnowledgeBase::generate(bad), std::invalid_argument);
  bad = small_config();
  bad.facts_per_entity = 100;
  EXPECT_THROW(KnowledgeBase::generate(bad), std::invalid_argument);
}

TEST(GeneralKnowledge, GeneratesCompleteItems) {
  const GeneralKnowledge gk = GeneralKnowledge::generate(50, 3);
  EXPECT_EQ(gk.items().size(), 50u);
  for (const auto& item : gk.items()) {
    EXPECT_FALSE(item.statement.empty());
    EXPECT_NE(item.question.find('?'), std::string::npos);
    EXPECT_NE(item.statement.find(item.answer), std::string::npos);
  }
}

}  // namespace
}  // namespace astromlab::corpus
