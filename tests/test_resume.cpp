// Crash-and-resume durability: bit-identical training resume from a
// mid-run snapshot, trainer-state round trips, and the append-only eval
// journal that lets a killed benchmark replay only unanswered questions.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "corpus/corpora.hpp"
#include "eval/full_instruct.hpp"
#include "eval/journal.hpp"
#include "nn/train_state.hpp"
#include "nn/trainer.hpp"
#include "util/fault_injection.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"

namespace astromlab {
namespace {

namespace fs = std::filesystem;

class ResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::FaultInjector::instance().disarm();
    dir_ = fs::temp_directory_path() / ("astromlab_resume_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    util::FaultInjector::instance().disarm();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  fs::path dir_;
};

nn::GptModel make_train_model() {
  nn::GptConfig config;
  config.vocab_size = 30;
  config.ctx_len = 16;
  config.d_model = 16;
  config.n_heads = 2;
  config.n_layers = 1;
  config.d_ff = 32;
  nn::GptModel model(config);
  util::Rng rng(11);
  model.init_weights(rng);
  return model;
}

nn::TrainConfig make_train_config() {
  nn::TrainConfig train;
  train.micro_batch = 4;
  train.seq_len = 16;
  train.lr = 5e-3f;
  train.max_steps = 40;
  return train;
}

std::vector<nn::Token> make_stream() {
  std::vector<nn::Token> stream(3000);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    stream[i] = static_cast<nn::Token>(i % 10);
  }
  return stream;
}

TEST_F(ResumeTest, TrainerStateRoundTrip) {
  nn::TrainerState state;
  state.next_step = 20;
  state.total_steps = 40;
  state.tokens_processed = 1280;
  state.first_loss = 3.5f;
  state.final_loss = 1.25f;
  state.loss_sum = 47.5;
  state.optimizer_step_count = 20;
  state.params_crc = 0xCAFED00D;
  state.m = {0.5f, -0.25f, 0.0f};
  state.v = {0.01f, 0.02f, 0.03f};
  util::Rng rng(99);
  rng.next_double();  // advance so the state is not the seed state
  state.rng = rng.save_state();

  const fs::path path = dir_ / "trainer.state";
  save_trainer_state(state, path);
  const nn::TrainerState loaded = nn::load_trainer_state(path);

  EXPECT_EQ(loaded.next_step, state.next_step);
  EXPECT_EQ(loaded.total_steps, state.total_steps);
  EXPECT_EQ(loaded.tokens_processed, state.tokens_processed);
  EXPECT_EQ(loaded.first_loss, state.first_loss);
  EXPECT_EQ(loaded.final_loss, state.final_loss);
  EXPECT_EQ(loaded.loss_sum, state.loss_sum);
  EXPECT_EQ(loaded.optimizer_step_count, state.optimizer_step_count);
  EXPECT_EQ(loaded.params_crc, state.params_crc);
  EXPECT_EQ(loaded.m, state.m);
  EXPECT_EQ(loaded.v, state.v);
  EXPECT_EQ(loaded.rng.words, state.rng.words);
  EXPECT_EQ(loaded.rng.has_gaussian_spare, state.rng.has_gaussian_spare);

  // And the restored RNG continues the exact stream.
  util::Rng replica(1);
  replica.restore_state(loaded.rng);
  EXPECT_EQ(replica.next_u64(), rng.next_u64());
}

TEST_F(ResumeTest, CorruptTrainerStateRaisesTypedError) {
  nn::TrainerState state;
  state.next_step = 5;
  state.total_steps = 10;
  util::Rng rng(3);
  state.rng = rng.save_state();
  const fs::path path = dir_ / "corrupt.state";
  save_trainer_state(state, path);
  {
    std::fstream patch(path, std::ios::binary | std::ios::in | std::ios::out);
    patch.seekp(12);
    const char byte = 0x5A;
    patch.write(&byte, 1);
  }
  EXPECT_THROW(nn::load_trainer_state(path), util::CorruptFileError);
}

TEST_F(ResumeTest, KilledRunResumesBitIdentically) {
  nn::StreamDataset data_a(make_stream());
  nn::StreamDataset data_b(make_stream());
  const nn::TrainConfig config = make_train_config();

  // Run A: the reference, straight through with no durability.
  nn::GptModel model_a = make_train_model();
  nn::Trainer trainer_a(model_a, config);
  util::Rng rng_a(13);
  const nn::TrainStats stats_a = trainer_a.train(data_a, rng_a);
  ASSERT_EQ(stats_a.steps, 40u);

  // Run B: snapshot every 10 steps, "crash" (throw) at step 25.
  nn::DurabilityConfig durability;
  durability.save_every = 10;
  durability.state_path = dir_ / "run.state";
  durability.model_path = dir_ / "run.resume.ckpt";
  {
    nn::GptModel model_b = make_train_model();
    nn::Trainer trainer_b(model_b, config);
    util::Rng rng_b(13);
    EXPECT_THROW(trainer_b.train(data_b, rng_b, durability,
                                 [](std::size_t step, float) {
                                   if (step == 24) throw std::runtime_error("simulated crash");
                                 }),
                 std::runtime_error);
  }
  ASSERT_TRUE(fs::exists(durability.state_path));   // snapshot at step 20 survived
  ASSERT_TRUE(fs::exists(durability.model_path));

  // Restart: a fresh process would rebuild the same model/rng and re-call
  // train with the same durability paths.
  nn::GptModel model_b = make_train_model();
  nn::Trainer trainer_b(model_b, config);
  util::Rng rng_b(13);
  nn::StreamDataset data_b2(make_stream());
  const nn::TrainStats stats_b = trainer_b.train(data_b2, rng_b, durability);

  EXPECT_EQ(stats_b.steps, stats_a.steps);
  EXPECT_EQ(stats_b.tokens_processed, stats_a.tokens_processed);
  EXPECT_EQ(stats_b.first_loss, stats_a.first_loss);
  EXPECT_EQ(stats_b.final_loss, stats_a.final_loss);  // bitwise: same float
  EXPECT_DOUBLE_EQ(stats_b.mean_loss, stats_a.mean_loss);
  const float* pa = model_a.params().params();
  const float* pb = model_b.params().params();
  for (std::size_t i = 0; i < model_a.params().total_size(); ++i) {
    ASSERT_EQ(pa[i], pb[i]) << "param " << i << " diverged after resume";
  }

  // Completion removed the snapshots so they cannot hijack a future run.
  EXPECT_FALSE(fs::exists(durability.state_path));
  EXPECT_FALSE(fs::exists(durability.model_path));
}

TEST_F(ResumeTest, MismatchedPlanFallsBackToFreshStart) {
  nn::StreamDataset data(make_stream());
  nn::DurabilityConfig durability;
  durability.save_every = 10;
  durability.state_path = dir_ / "stale.state";
  durability.model_path = dir_ / "stale.resume.ckpt";

  // A state file from a 100-step plan must not steer a 40-step run.
  nn::TrainerState stale;
  stale.next_step = 90;
  stale.total_steps = 100;
  util::Rng state_rng(7);
  stale.rng = state_rng.save_state();
  save_trainer_state(stale, durability.state_path);

  nn::GptModel model = make_train_model();
  nn::Trainer trainer(model, make_train_config());
  util::Rng rng(13);
  const nn::TrainStats stats = trainer.train(data, rng, durability);
  EXPECT_EQ(stats.steps, 40u);  // ran the whole plan, not 100 - 90 steps
}

using eval::QuestionResult;

QuestionResult make_result(int predicted, int correct, corpus::Tier tier) {
  QuestionResult r;
  r.predicted = predicted;
  r.correct = correct;
  r.tier = tier;
  r.method = eval::ExtractionMethod::kRegex;
  return r;
}

TEST_F(ResumeTest, JournalRoundTripAndTornTail) {
  const fs::path path = dir_ / "results" / "bench.jsonl";
  {
    eval::EvalJournal journal(path);
    EXPECT_TRUE(journal.active());
    EXPECT_EQ(journal.size(), 0u);
    journal.record(0, make_result(2, 2, corpus::Tier::kCanonical));
    journal.record(3, make_result(1, 0, corpus::Tier::kFrontier));
  }
  {
    // Simulate a kill mid-append: a torn, newline-less final line.
    std::ofstream torn(path, std::ios::app);
    torn << "{\"q\": 7, \"pre";
  }
  eval::EvalJournal reloaded(path);
  EXPECT_EQ(reloaded.size(), 2u);
  ASSERT_TRUE(reloaded.lookup(0).has_value());
  EXPECT_EQ(reloaded.lookup(0)->predicted, 2);
  EXPECT_EQ(reloaded.lookup(0)->tier, corpus::Tier::kCanonical);
  ASSERT_TRUE(reloaded.lookup(3).has_value());
  EXPECT_EQ(reloaded.lookup(3)->predicted, 1);
  EXPECT_EQ(reloaded.lookup(3)->correct, 0);
  EXPECT_FALSE(reloaded.lookup(7).has_value());  // torn line dropped
  EXPECT_FALSE(reloaded.lookup(1).has_value());

  reloaded.discard();
  EXPECT_FALSE(fs::exists(path));
}

TEST_F(ResumeTest, InactiveJournalIsANoOp) {
  eval::EvalJournal journal;
  EXPECT_FALSE(journal.active());
  journal.record(0, make_result(1, 1, corpus::Tier::kCanonical));
  EXPECT_FALSE(journal.lookup(0).has_value());
  journal.discard();  // must not throw
}

struct TinyWorld {
  corpus::KnowledgeBase kb;
  corpus::McqSplit mcqs;
  tokenizer::BpeTokenizer tok;
};

TinyWorld make_eval_world() {
  TinyWorld world;
  corpus::KbConfig kb_config;
  kb_config.n_topics = 4;
  kb_config.entities_per_topic = 3;
  kb_config.facts_per_entity = 2;
  kb_config.seed = 61;
  world.kb = corpus::KnowledgeBase::generate(kb_config);
  corpus::McqGenConfig mcq_config;
  mcq_config.questions_per_topic = 2;
  mcq_config.seed = 62;
  world.mcqs = corpus::generate_mcqs(world.kb, mcq_config);
  tokenizer::BpeTrainConfig tok_config;
  tok_config.vocab_size = 420;
  world.tok = tokenizer::BpeTokenizer::train(
      corpus::build_tokenizer_training_text(world.kb, world.mcqs.practice, 63), tok_config);
  return world;
}

nn::GptModel make_eval_model(const TinyWorld& world) {
  nn::GptConfig config;
  config.vocab_size = world.tok.vocab_size();
  config.ctx_len = 384;
  config.d_model = 24;
  config.n_heads = 2;
  config.n_layers = 1;
  config.d_ff = 48;
  nn::GptModel model(config);
  util::Rng rng(64);
  model.init_weights(rng);
  return model;
}

TEST_F(ResumeTest, BenchmarkReplaysOnlyUnansweredQuestions) {
  const TinyWorld world = make_eval_world();
  const nn::GptModel model = make_eval_model(world);
  eval::FullInstructConfig config;
  config.max_new_tokens = 16;

  const std::vector<QuestionResult> baseline =
      eval::run_full_instruct_benchmark(model, world.tok, world.mcqs.benchmark, config);
  ASSERT_GE(baseline.size(), 4u);

  // Pre-seed a journal with the first half, using sentinel predictions the
  // model would never produce for a re-run: if the final results carry the
  // sentinels, those questions were genuinely skipped.
  const fs::path path = dir_ / "bench.jsonl";
  const std::size_t half = baseline.size() / 2;
  {
    eval::EvalJournal journal(path);
    for (std::size_t q = 0; q < half; ++q) {
      QuestionResult sentinel = baseline[q];
      sentinel.predicted = (baseline[q].predicted + 1) % 4;
      journal.record(q, sentinel);
    }
  }

  eval::EvalJournal journal(path);
  const std::vector<QuestionResult> resumed = eval::run_full_instruct_benchmark(
      model, world.tok, world.mcqs.benchmark, config, &journal);
  ASSERT_EQ(resumed.size(), baseline.size());
  for (std::size_t q = 0; q < half; ++q) {
    EXPECT_EQ(resumed[q].predicted, (baseline[q].predicted + 1) % 4) << q;
  }
  for (std::size_t q = half; q < baseline.size(); ++q) {
    EXPECT_EQ(resumed[q].predicted, baseline[q].predicted) << q;
  }
  // Fresh answers were journalled, so the journal now covers every question.
  EXPECT_EQ(journal.size(), baseline.size());
}

TEST_F(ResumeTest, StaleJournalEntriesAreIgnored) {
  const TinyWorld world = make_eval_world();
  const nn::GptModel model = make_eval_model(world);
  eval::FullInstructConfig config;
  config.max_new_tokens = 16;

  const std::vector<QuestionResult> baseline =
      eval::run_full_instruct_benchmark(model, world.tok, world.mcqs.benchmark, config);

  // A journal from a *different* benchmark: the correct answer on record
  // disagrees, so the entry must be re-run, not reused.
  const fs::path path = dir_ / "stale.jsonl";
  {
    eval::EvalJournal journal(path);
    QuestionResult wrong_world = baseline[0];
    wrong_world.correct = (baseline[0].correct + 1) % 4;
    wrong_world.predicted = (baseline[0].predicted + 1) % 4;
    journal.record(0, wrong_world);
  }
  eval::EvalJournal journal(path);
  const std::vector<QuestionResult> resumed = eval::run_full_instruct_benchmark(
      model, world.tok, world.mcqs.benchmark, config, &journal);
  EXPECT_EQ(resumed[0].predicted, baseline[0].predicted);
  EXPECT_EQ(resumed[0].correct, baseline[0].correct);
}

TEST_F(ResumeTest, TornJournalReadReplaysTheTornTailBitIdentically) {
  const TinyWorld world = make_eval_world();
  const nn::GptModel model = make_eval_model(world);
  eval::FullInstructConfig config;
  config.max_new_tokens = 16;

  // Complete baseline run, fully journalled to disk.
  const fs::path path = dir_ / "torn_read.jsonl";
  std::vector<QuestionResult> baseline;
  {
    eval::EvalJournal journal(path);
    baseline = eval::run_full_instruct_benchmark(model, world.tok, world.mcqs.benchmark,
                                                 config, &journal);
  }
  const std::size_t total = baseline.size();
  ASSERT_GE(total, 4u);

  // The resuming load observes a torn read: only a prefix of the bytes
  // arrives, cutting the final surviving record mid-line. The clean-prefix
  // entries are kept, the torn tail is dropped (and truncated off the
  // file) — never trusted.
  util::FaultInjector::instance().arm_torn_read(1);
  eval::EvalJournal journal(path);
  util::FaultInjector::instance().disarm();
  EXPECT_LT(journal.size(), total);
  EXPECT_GT(journal.size(), 0u);

  // Replaying re-answers exactly the dropped questions and converges to
  // the baseline results, with the journal whole again afterwards.
  const std::vector<QuestionResult> resumed = eval::run_full_instruct_benchmark(
      model, world.tok, world.mcqs.benchmark, config, &journal);
  ASSERT_EQ(resumed.size(), total);
  for (std::size_t q = 0; q < total; ++q) {
    EXPECT_EQ(resumed[q].predicted, baseline[q].predicted) << "question " << q;
    EXPECT_EQ(resumed[q].correct, baseline[q].correct) << "question " << q;
  }
  EXPECT_EQ(journal.size(), total);

  eval::EvalJournal reloaded(path);
  EXPECT_EQ(reloaded.size(), total);
}

TEST_F(ResumeTest, UnreadableJournalDegradesToAFreshRun) {
  const TinyWorld world = make_eval_world();
  const nn::GptModel model = make_eval_model(world);
  eval::FullInstructConfig config;
  config.max_new_tokens = 16;

  const fs::path path = dir_ / "unreadable.jsonl";
  std::vector<QuestionResult> baseline;
  {
    eval::EvalJournal journal(path);
    baseline = eval::run_full_instruct_benchmark(model, world.tok, world.mcqs.benchmark,
                                                 config, &journal);
  }

  // An I/O failure on the resume load must not abort the study: the
  // journal degrades to empty and every question simply re-runs.
  util::FaultInjector::instance().arm_fail_read(1);
  eval::EvalJournal journal(path);
  util::FaultInjector::instance().disarm();
  EXPECT_TRUE(journal.active());
  EXPECT_EQ(journal.size(), 0u);

  const std::vector<QuestionResult> resumed = eval::run_full_instruct_benchmark(
      model, world.tok, world.mcqs.benchmark, config, &journal);
  ASSERT_EQ(resumed.size(), baseline.size());
  for (std::size_t q = 0; q < baseline.size(); ++q) {
    EXPECT_EQ(resumed[q].predicted, baseline[q].predicted) << "question " << q;
  }
  EXPECT_EQ(journal.size(), baseline.size());
}

TEST_F(ResumeTest, WatchdogDegradesRunawayQuestion) {
  const TinyWorld world = make_eval_world();
  const nn::GptModel model = make_eval_model(world);
  eval::FullInstructConfig config;
  config.max_new_tokens = 64;
  config.max_seconds_per_question = 1e-9;  // fires before the first token
  const eval::FullInstructOutcome outcome =
      eval::full_instruct_one(model, world.tok, world.mcqs.benchmark.front(), config);
  EXPECT_TRUE(outcome.timed_out);
  EXPECT_EQ(outcome.result.predicted, -1);
  EXPECT_EQ(outcome.result.method, eval::ExtractionMethod::kFailed);

  // Scorer counts the degraded question as unanswered, not as a crash.
  const eval::ScoreSummary summary = eval::summarize({outcome.result});
  EXPECT_EQ(summary.unanswered, 1u);
  EXPECT_DOUBLE_EQ(summary.accuracy, 0.0);
  EXPECT_DOUBLE_EQ(summary.answered_accuracy, 0.0);
}

}  // namespace
}  // namespace astromlab
