// Prefix-aware KV snapshot cache: bit-identity of forked logits against
// from-scratch prefills (random configs, prefix lengths 0 / 1 / ctx-1,
// after reset()), staleness detection (reset generation, CRC), and
// cache-on/cache-off byte-parity of whole benchmark runs — serial,
// parallel, and killed-then-resumed.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "corpus/corpora.hpp"
#include "eval/full_instruct.hpp"
#include "eval/journal.hpp"
#include "eval/prefix_cache.hpp"
#include "eval/supervisor.hpp"
#include "eval/token_method.hpp"
#include "nn/gpt.hpp"
#include "nn/sampler.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"

namespace astromlab {
namespace {

namespace fs = std::filesystem;
using eval::EvalRunOptions;
using eval::PrefixCache;
using eval::PrefixCacheStats;
using eval::QuestionResult;

/// Bit-level (not epsilon) comparison: the cache's contract is that forking
/// changes *nothing* about the numbers, only about the work.
void expect_bit_identical(const std::vector<float>& want, const std::vector<float>& got,
                          const std::string& context) {
  ASSERT_EQ(want.size(), got.size()) << context;
  EXPECT_EQ(std::memcmp(want.data(), got.data(), want.size() * sizeof(float)), 0) << context;
}

/// Small random-but-valid architecture; dimensions vary across trials so the
/// equivalence property is not an artefact of one shape.
nn::GptConfig random_config(util::Rng& rng) {
  nn::GptConfig config;
  config.n_heads = 1 + rng.next_below(3);
  config.d_model = config.n_heads * (4 + 2 * rng.next_below(3));
  config.n_layers = 1 + rng.next_below(2);
  config.d_ff = 2 * config.d_model;
  config.vocab_size = 64 + rng.next_below(64);
  config.ctx_len = 16 + rng.next_below(17);
  config.validate();
  return config;
}

std::vector<nn::Token> random_tokens(util::Rng& rng, std::size_t count, std::size_t vocab) {
  std::vector<nn::Token> tokens(count);
  for (auto& t : tokens) t = static_cast<nn::Token>(rng.next_below(vocab));
  return tokens;
}

TEST(PrefixSnapshot, ForkedLogitsBitIdenticalAcrossConfigsAndPrefixLengths) {
  util::Rng rng(20240817);
  for (int trial = 0; trial < 6; ++trial) {
    const nn::GptConfig config = random_config(rng);
    nn::GptModel model(config);
    util::Rng init(1000 + static_cast<std::uint64_t>(trial));
    model.init_weights(init);

    const std::size_t len = 3 + rng.next_below(config.ctx_len - 4);
    const std::vector<nn::Token> tokens = random_tokens(rng, len, config.vocab_size);

    nn::GptInference reference(model);
    const std::vector<float> want = reference.prompt(tokens);

    nn::GptInference source(model);
    nn::GptInference fork(model);
    for (const std::size_t prefix : {std::size_t{0}, std::size_t{1}, len / 2, len - 1}) {
      source.reset();
      source.prompt(tokens.data(), prefix, nullptr);
      const nn::KvSnapshot snap = source.snapshot();
      ASSERT_EQ(snap.length(), prefix);
      ASSERT_EQ(snap.tokens(),
                std::vector<nn::Token>(tokens.begin(),
                                       tokens.begin() + static_cast<std::ptrdiff_t>(prefix)));

      // Forking into a previously-used inference must fully replace its
      // state; the loop reuses `fork` without resetting it on purpose.
      fork.fork_from(snap);
      const std::vector<float>& got = fork.prompt(tokens.data() + prefix, len - prefix, nullptr);
      expect_bit_identical(want, got,
                           "trial " + std::to_string(trial) + " prefix " +
                               std::to_string(prefix) + " of " + std::to_string(len));
      EXPECT_EQ(fork.position(), len);
      EXPECT_EQ(fork.history(), tokens);
    }
  }
}

TEST(PrefixSnapshot, FullLengthForkContinuesBitIdenticallyUnderStep) {
  util::Rng rng(7);
  const nn::GptConfig config = random_config(rng);
  nn::GptModel model(config);
  util::Rng init(11);
  model.init_weights(init);

  const std::size_t len = config.ctx_len / 2;
  const std::vector<nn::Token> tokens = random_tokens(rng, len, config.vocab_size);
  const std::vector<nn::Token> extra = random_tokens(rng, 4, config.vocab_size);

  nn::GptInference reference(model);
  reference.prompt(tokens);

  nn::GptInference source(model);
  source.prompt(tokens);
  nn::GptInference fork(model);
  fork.fork_from(source.snapshot());
  EXPECT_EQ(fork.position(), len);

  // Generation after a fork of the *entire* prompt: every subsequent step
  // must track the from-scratch cache exactly.
  for (const nn::Token t : extra) {
    const std::vector<float> want = reference.step(t);
    expect_bit_identical(want, fork.step(t), "step after full-length fork");
  }
}

TEST(PrefixSnapshot, ContextBoundaryPrefixIsExact) {
  // prefix = ctx-1, feeding the final token lands exactly on the context
  // limit: the snapshot path must agree with the from-scratch path at the
  // window edge, not just in the interior.
  nn::GptConfig config;
  config.vocab_size = 96;
  config.ctx_len = 12;
  config.d_model = 16;
  config.n_heads = 2;
  config.n_layers = 2;
  config.d_ff = 32;
  nn::GptModel model(config);
  util::Rng init(21);
  model.init_weights(init);

  util::Rng rng(22);
  const std::vector<nn::Token> tokens = random_tokens(rng, config.ctx_len, config.vocab_size);

  nn::GptInference reference(model);
  const std::vector<float> want = reference.prompt(tokens);

  nn::GptInference source(model);
  source.prompt(tokens.data(), config.ctx_len - 1, nullptr);
  nn::GptInference fork(model);
  fork.fork_from(source.snapshot());
  expect_bit_identical(want, fork.step(tokens.back()), "ctx-1 prefix");
  EXPECT_EQ(fork.position(), config.ctx_len);
}

TEST(PrefixSnapshot, PartialForkAndForkAfterForkerReset) {
  util::Rng rng(31);
  const nn::GptConfig config = random_config(rng);
  nn::GptModel model(config);
  util::Rng init(32);
  model.init_weights(init);

  const std::size_t len = 8;
  const std::vector<nn::Token> tokens = random_tokens(rng, len, config.vocab_size);
  nn::GptInference reference(model);
  const std::vector<float> want = reference.prompt(tokens);

  nn::GptInference source(model);
  source.prompt(tokens);
  const nn::KvSnapshot snap = source.snapshot();

  nn::GptInference fork(model);
  // Fork only part of the snapshot, consume it, then reset the *forker*
  // and fork again: resetting the destination must not poison the shared
  // snapshot (only resetting the source does).
  fork.fork_from(snap, len / 2);
  fork.prompt(tokens.data() + len / 2, len - len / 2, nullptr);
  fork.reset();
  fork.fork_from(snap, len - 1);
  expect_bit_identical(want, fork.step(tokens.back()), "re-fork after forker reset");
}

TEST(PrefixSnapshot, SourceSteppingFurtherKeepsSnapshotUsable) {
  util::Rng rng(41);
  const nn::GptConfig config = random_config(rng);
  nn::GptModel model(config);
  util::Rng init(42);
  model.init_weights(init);

  const std::size_t len = 6;
  const std::vector<nn::Token> tokens = random_tokens(rng, len + 4, config.vocab_size);
  const nn::Token probe = tokens[len + 3];
  nn::GptInference reference(model);
  reference.prompt(tokens.data(), len, nullptr);
  const std::vector<float> want = reference.step(probe);

  nn::GptInference source(model);
  source.prompt(tokens.data(), len, nullptr);
  const nn::KvSnapshot snap = source.snapshot();
  // Earlier K/V rows are immutable, so advancing the source does not
  // invalidate handles taken before the advance.
  source.prompt(tokens.data() + len, 3, nullptr);

  nn::GptInference fork(model);
  fork.fork_from(snap);
  EXPECT_EQ(fork.position(), len);
  expect_bit_identical(want, fork.step(probe), "fork after source advanced");
}

TEST(PrefixSnapshot, ForkAfterSourceResetThrowsStaleSnapshotError) {
  nn::GptConfig config;
  config.vocab_size = 64;
  config.ctx_len = 16;
  config.d_model = 8;
  config.n_heads = 2;
  config.n_layers = 1;
  config.d_ff = 16;
  nn::GptModel model(config);
  util::Rng init(51);
  model.init_weights(init);

  util::Rng rng(52);
  nn::GptInference source(model);
  source.prompt(random_tokens(rng, 5, config.vocab_size));
  const nn::KvSnapshot snap = source.snapshot();
  EXPECT_TRUE(snap.valid());

  source.reset();  // regression: this must invalidate every held handle
  nn::GptInference fork(model);
  EXPECT_THROW(fork.fork_from(snap), nn::StaleSnapshotError);
  EXPECT_THROW(fork.fork_from(snap, 1), nn::StaleSnapshotError);

  // A snapshot taken after the reset is a fresh generation and works.
  source.prompt(random_tokens(rng, 4, config.vocab_size));
  fork.fork_from(source.snapshot());
  EXPECT_EQ(fork.position(), 4u);
}

TEST(PrefixSnapshot, CrcRevalidationCatchesMutatedRows) {
  nn::GptConfig config;
  config.vocab_size = 64;
  config.ctx_len = 16;
  config.d_model = 8;
  config.n_heads = 2;
  config.n_layers = 1;
  config.d_ff = 16;
  nn::GptModel model(config);
  util::Rng init(61);
  model.init_weights(init);

  util::Rng rng(62);
  const std::vector<nn::Token> tokens = random_tokens(rng, 5, config.vocab_size);
  nn::GptInference source(model);
  source.prompt(tokens);
  const nn::KvSnapshot snap = source.snapshot();

  // Corruption *beyond* the snapshotted rows is outside the CRC and the
  // copy, so the fork still succeeds and stays bit-identical.
  nn::GptInference reference(model);
  const std::vector<float> want = reference.prompt(tokens);
  source.corrupt_kv_for_testing(0, tokens.size() * config.d_model, 1e6f);
  nn::GptInference fork(model);
  fork.fork_from(snap, tokens.size() - 1);
  expect_bit_identical(want, fork.step(tokens.back()), "corruption beyond prefix");

  // Corruption *inside* the snapshotted rows must fail revalidation loudly
  // instead of silently serving the wrong prefill.
  source.corrupt_kv_for_testing(0, 0, 12345.0f);
  EXPECT_THROW(fork.fork_from(snap), nn::StaleSnapshotError);
}

TEST(PrefixSnapshot, InvalidHandleAndArgumentErrors) {
  nn::GptConfig config;
  config.vocab_size = 64;
  config.ctx_len = 16;
  config.d_model = 8;
  config.n_heads = 2;
  config.n_layers = 1;
  config.d_ff = 16;
  nn::GptModel model(config);
  util::Rng init(71);
  model.init_weights(init);

  nn::GptInference fork(model);
  EXPECT_THROW(fork.fork_from(nn::KvSnapshot{}), nn::StaleSnapshotError);

  util::Rng rng(72);
  nn::GptInference source(model);
  source.prompt(random_tokens(rng, 4, config.vocab_size));
  const nn::KvSnapshot snap = source.snapshot();
  EXPECT_THROW(fork.fork_from(snap, 5), std::invalid_argument);

  nn::GptModel other(config);
  other.init_weights(init);
  nn::GptInference foreign(other);
  EXPECT_THROW(foreign.fork_from(snap), std::invalid_argument);
}

TEST(PrefixSnapshot, CommonTokenPrefixLengths) {
  using nn::common_token_prefix;
  EXPECT_EQ(common_token_prefix({}, {}), 0u);
  EXPECT_EQ(common_token_prefix({1, 2, 3}, {}), 0u);
  EXPECT_EQ(common_token_prefix({1, 2, 3}, {1, 2, 3}), 3u);
  EXPECT_EQ(common_token_prefix({1, 2, 3, 4}, {1, 2, 9}), 2u);
  EXPECT_EQ(common_token_prefix({5, 2, 3}, {1, 2, 3}), 0u);
}

TEST(PrefixSnapshot, ForkIntoBatchSlotBitIdenticalToSerialForkWithBusyNeighbours) {
  // The decode engine admits a forked question into one slot of a live
  // batch. The forked slot must produce logits bitwise equal to a serial
  // fork of the same snapshot, and the neighbouring slots — mid-flight on
  // unrelated sequences — must not move by a single bit either way.
  util::Rng rng(20260812);
  for (int trial = 0; trial < 4; ++trial) {
    const nn::GptConfig config = random_config(rng);
    nn::GptModel model(config);
    util::Rng init(3000 + static_cast<std::uint64_t>(trial));
    model.init_weights(init);

    const std::size_t len = 4 + rng.next_below(config.ctx_len - 5);
    const std::vector<nn::Token> tokens = random_tokens(rng, len, config.vocab_size);
    const std::size_t prefix = 1 + rng.next_below(len - 1);

    nn::GptInference reference(model);
    const std::vector<float> want = reference.prompt(tokens);

    nn::GptInference source(model);
    source.prompt(tokens.data(), prefix, nullptr);
    const nn::KvSnapshot snap = source.snapshot();

    // Neighbour slots 0 and 2 run their own sequences; fork lands in 1.
    const std::size_t n_len = len;  // same horizon so all slots step together
    std::vector<std::vector<nn::Token>> neighbour(2);
    for (auto& seq : neighbour) seq = random_tokens(rng, n_len, config.vocab_size);
    std::vector<std::vector<float>> neighbour_want(2);
    for (std::size_t i = 0; i < 2; ++i) {
      nn::GptInference serial(model);
      neighbour_want[i] = serial.prompt(neighbour[i]);
    }

    nn::BatchedInference bi(model, 3);
    // Warm the neighbours a few tokens before the fork is admitted.
    const std::size_t warm = std::min<std::size_t>(2, n_len);
    for (std::size_t t = 0; t < warm; ++t) {
      const std::size_t slots[] = {0, 2};
      const nn::Token toks[] = {neighbour[0][t], neighbour[1][t]};
      bi.step(slots, toks, 2);
    }
    bi.fork_slot(1, snap, prefix);
    EXPECT_EQ(bi.position(1), prefix);
    // Drive all three slots to completion with ragged per-slot progress.
    std::size_t fed1 = prefix, fed0 = warm, fed2 = warm;
    while (fed0 < n_len || fed1 < len || fed2 < n_len) {
      std::vector<std::size_t> slots;
      std::vector<nn::Token> toks;
      if (fed0 < n_len) { slots.push_back(0); toks.push_back(neighbour[0][fed0++]); }
      if (fed1 < len) { slots.push_back(1); toks.push_back(tokens[fed1++]); }
      if (fed2 < n_len) { slots.push_back(2); toks.push_back(neighbour[1][fed2++]); }
      bi.step(slots.data(), toks.data(), slots.size());
    }
    expect_bit_identical(want, bi.logits(1),
                         "forked slot, trial " + std::to_string(trial) + " prefix " +
                             std::to_string(prefix) + " of " + std::to_string(len));
    EXPECT_EQ(bi.position(1), len);
    expect_bit_identical(neighbour_want[0], bi.logits(0), "neighbour slot 0");
    expect_bit_identical(neighbour_want[1], bi.logits(2), "neighbour slot 2");
  }
}

// ---------------------------------------------------------------------------
// PrefixCache and full-run parity on a tiny synthetic world.

struct TinyWorld {
  corpus::KnowledgeBase kb;
  corpus::McqSplit mcqs;
  tokenizer::BpeTokenizer tok;
};

TinyWorld make_eval_world() {
  TinyWorld world;
  corpus::KbConfig kb_config;
  kb_config.n_topics = 4;
  kb_config.entities_per_topic = 3;
  kb_config.facts_per_entity = 2;
  kb_config.seed = 61;
  world.kb = corpus::KnowledgeBase::generate(kb_config);
  corpus::McqGenConfig mcq_config;
  mcq_config.questions_per_topic = 2;
  mcq_config.seed = 62;
  world.mcqs = corpus::generate_mcqs(world.kb, mcq_config);
  tokenizer::BpeTrainConfig tok_config;
  tok_config.vocab_size = 420;
  world.tok = tokenizer::BpeTokenizer::train(
      corpus::build_tokenizer_training_text(world.kb, world.mcqs.practice, 63), tok_config);
  return world;
}

nn::GptModel make_eval_model(const TinyWorld& world) {
  nn::GptConfig config;
  config.vocab_size = world.tok.vocab_size();
  // Unlike the supervisor tests' 384, the window here comfortably fits
  // every ~380-token prompt: otherwise oversized questions degrade before
  // reaching the cache and the parity checks would exercise one fork only.
  config.ctx_len = 512;
  config.d_model = 24;
  config.n_heads = 2;
  config.n_layers = 1;
  config.d_ff = 48;
  nn::GptModel model(config);
  util::Rng rng(64);
  model.init_weights(rng);
  return model;
}

void expect_same_results(const std::vector<QuestionResult>& a,
                         const std::vector<QuestionResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t q = 0; q < a.size(); ++q) {
    EXPECT_EQ(a[q].predicted, b[q].predicted) << "question " << q;
    EXPECT_EQ(a[q].correct, b[q].correct) << "question " << q;
    EXPECT_EQ(a[q].tier, b[q].tier) << "question " << q;
    EXPECT_EQ(a[q].method, b[q].method) << "question " << q;
    EXPECT_EQ(a[q].retries, b[q].retries) << "question " << q;
    EXPECT_EQ(a[q].degraded, b[q].degraded) << "question " << q;
  }
}

class PrefixCacheEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("astromlab_prefix_cache_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  /// Truncates `source`'s journal to its first `lines` lines at `target`,
  /// simulating a kill mid-run (the in-order flush guarantees the prefix).
  void truncate_journal(const fs::path& source, const fs::path& target, int lines) {
    std::istringstream in(util::read_text_file(source));
    std::ofstream out(target, std::ios::binary);
    std::string line;
    for (int i = 0; i < lines && std::getline(in, line); ++i) out << line << '\n';
  }

  fs::path dir_;
};

TEST_F(PrefixCacheEvalTest, BuildDiscoversSharedPrefixOrDeclines) {
  const TinyWorld world = make_eval_world();
  const nn::GptModel model = make_eval_model(world);

  // Fewer than two samples: nothing to intersect.
  EXPECT_EQ(PrefixCache::build(model, world.tok, {}), nullptr);
  EXPECT_EQ(PrefixCache::build(model, world.tok, {"only one prompt"}), nullptr);
  // Disjoint first tokens: no shareable block.
  EXPECT_EQ(PrefixCache::build(model, world.tok, {"alpha question", "zeta question"}), nullptr);

  const std::string shared = "The following is an exam about the synthetic universe.\n";
  const auto cache =
      PrefixCache::build(model, world.tok, {shared + "Q1: first?", shared + "Q2: second?"});
  ASSERT_NE(cache, nullptr);
  EXPECT_GT(cache->prefix_length(), 0u);
  EXPECT_TRUE(cache->snapshot().valid());

  // fork() reuses the shared block and records the accounting.
  const std::vector<tokenizer::TokenId> ids = world.tok.encode(shared + "Q3: third?");
  const std::vector<nn::Token> tokens(ids.begin(), ids.end());
  nn::GptInference worker(model);
  const std::size_t reused = cache->fork(worker, tokens);
  EXPECT_GT(reused, 0u);
  EXPECT_LT(reused, tokens.size());  // capped: at least one token is fed fresh
  EXPECT_EQ(worker.position(), reused);

  const PrefixCacheStats stats = cache->stats();
  EXPECT_EQ(stats.prompts, 1u);
  EXPECT_EQ(stats.prompt_tokens, tokens.size());
  EXPECT_EQ(stats.reused_tokens, reused);
  EXPECT_GT(stats.reuse_ratio(), 0.0);
  EXPECT_LE(stats.reuse_ratio(), 1.0);
}

TEST_F(PrefixCacheEvalTest, CacheForkIntoBatchSlotMatchesSerialOverload) {
  // The batched fork() overload must compute the same reuse offset as the
  // serial one and leave the slot in a state whose subsequent logits are
  // bitwise equal — including after evict(), where both degrade to a full
  // reset and feed-everything.
  const TinyWorld world = make_eval_world();
  const nn::GptModel model = make_eval_model(world);
  const std::string shared = "The following is an exam about the synthetic universe.\n";
  const auto cache =
      PrefixCache::build(model, world.tok, {shared + "Q1: first?", shared + "Q2: second?"});
  ASSERT_NE(cache, nullptr);

  const std::vector<tokenizer::TokenId> ids = world.tok.encode(shared + "Q3: third?");
  const std::vector<nn::Token> tokens(ids.begin(), ids.end());

  for (const bool evicted : {false, true}) {
    if (evicted) {
      EXPECT_GT(cache->evict(), 0u);
    }
    nn::GptInference serial(model);
    const std::size_t reused_serial = cache->fork(serial, tokens);
    const std::vector<float> want =
        serial.prompt(tokens.data() + reused_serial, tokens.size() - reused_serial, nullptr);

    nn::BatchedInference bi(model, 2);
    const std::size_t reused_batched = cache->fork(bi, 1, tokens);
    EXPECT_EQ(reused_batched, reused_serial) << "evicted=" << evicted;
    if (evicted) {
      EXPECT_EQ(reused_batched, 0u);
    }
    const std::size_t slot = 1;
    for (std::size_t t = reused_batched; t < tokens.size(); ++t) {
      const nn::Token token = tokens[t];
      bi.step(&slot, &token, 1);
    }
    expect_bit_identical(want, bi.logits(1),
                         std::string("batched cache fork, evicted=") +
                             (evicted ? "true" : "false"));
    EXPECT_EQ(bi.position(1), tokens.size());
  }
}

TEST_F(PrefixCacheEvalTest, SamplerWithSnapshotGeneratesIdenticalTokens) {
  const TinyWorld world = make_eval_world();
  const nn::GptModel model = make_eval_model(world);

  const std::string shared = "You are an astronomy exam assistant. Answer with a letter.\n";
  const auto cache = PrefixCache::build(
      model, world.tok, {shared + "Question A?", shared + "Question B?"});
  ASSERT_NE(cache, nullptr);

  const std::vector<tokenizer::TokenId> ids = world.tok.encode(shared + "Question C?");
  const std::vector<nn::Token> prompt(ids.begin(), ids.end());

  nn::SampleConfig config;
  config.max_new_tokens = 12;
  config.stop_tokens = {world.tok.end_turn_id(), world.tok.eos_id()};

  nn::Sampler cold(model);
  util::Rng rng_cold(5);
  const nn::SampleResult without = cold.generate(prompt, config, rng_cold);
  EXPECT_EQ(without.reused_prefix_tokens, 0u);

  config.prefix_snapshot = &cache->snapshot();
  nn::Sampler warm(model);
  util::Rng rng_warm(5);
  const nn::SampleResult with = warm.generate(prompt, config, rng_warm);

  EXPECT_GT(with.reused_prefix_tokens, 0u);
  EXPECT_EQ(without.tokens, with.tokens);
  EXPECT_EQ(without.hit_stop, with.hit_stop);
  EXPECT_EQ(without.hit_context_limit, with.hit_context_limit);
}

TEST_F(PrefixCacheEvalTest, TokenMethodCacheOnMatchesNoCacheByteForByte) {
  const TinyWorld world = make_eval_world();
  const nn::GptModel model = make_eval_model(world);

  // Reference: serial, cache off (the defaults).
  eval::EvalJournal serial_journal(dir_ / "serial.jsonl");
  const auto serial = eval::run_token_benchmark(model, world.tok, world.mcqs.benchmark,
                                                world.mcqs.practice, &serial_journal);
  const std::string serial_bytes = util::read_text_file(dir_ / "serial.jsonl");

  // Parallel with the cache on: identical scores AND identical journal
  // bytes, plus a non-trivial reuse ratio (the cache actually engaged).
  EvalRunOptions opts;
  opts.workers = 4;
  opts.prefix_cache = true;
  PrefixCacheStats stats;
  eval::EvalJournal cached_journal(dir_ / "cached.jsonl");
  const auto cached =
      eval::run_token_benchmark(model, world.tok, world.mcqs.benchmark, world.mcqs.practice,
                                &cached_journal, eval::TokenMethodConfig{}, opts, &stats);

  expect_same_results(serial, cached);
  EXPECT_EQ(serial_bytes, util::read_text_file(dir_ / "cached.jsonl"));
  EXPECT_GT(stats.prompts, 0u);
  EXPECT_GT(stats.reused_tokens, 0u);
  EXPECT_GT(stats.reuse_ratio(), 0.0);
  EXPECT_LE(stats.reuse_ratio(), 1.0);

  // Kill after 3 questions, resume in parallel with the cache on: the
  // resumed journal converges to the serial no-cache bytes.
  truncate_journal(dir_ / "serial.jsonl", dir_ / "resume.jsonl", 3);
  eval::EvalJournal resume_journal(dir_ / "resume.jsonl");
  ASSERT_EQ(resume_journal.size(), 3u);
  const auto resumed =
      eval::run_token_benchmark(model, world.tok, world.mcqs.benchmark, world.mcqs.practice,
                                &resume_journal, eval::TokenMethodConfig{}, opts);
  expect_same_results(serial, resumed);
  EXPECT_EQ(serial_bytes, util::read_text_file(dir_ / "resume.jsonl"));
}

TEST_F(PrefixCacheEvalTest, FullInstructCacheOnMatchesNoCacheByteForByte) {
  const TinyWorld world = make_eval_world();
  const nn::GptModel model = make_eval_model(world);
  eval::FullInstructConfig config;
  config.max_new_tokens = 16;

  eval::EvalJournal serial_journal(dir_ / "serial.jsonl");
  const auto serial = eval::run_full_instruct_benchmark(model, world.tok, world.mcqs.benchmark,
                                                        config, &serial_journal);
  const std::string serial_bytes = util::read_text_file(dir_ / "serial.jsonl");

  EvalRunOptions opts;
  opts.workers = 4;
  opts.prefix_cache = true;
  PrefixCacheStats stats;
  eval::EvalJournal cached_journal(dir_ / "cached.jsonl");
  const auto cached = eval::run_full_instruct_benchmark(model, world.tok, world.mcqs.benchmark,
                                                        config, &cached_journal, opts, &stats);

  expect_same_results(serial, cached);
  EXPECT_EQ(serial_bytes, util::read_text_file(dir_ / "cached.jsonl"));
  EXPECT_GT(stats.prompts, 0u);
  EXPECT_GT(stats.reuse_ratio(), 0.0);

  truncate_journal(dir_ / "serial.jsonl", dir_ / "resume.jsonl", 3);
  eval::EvalJournal resume_journal(dir_ / "resume.jsonl");
  const auto resumed = eval::run_full_instruct_benchmark(model, world.tok, world.mcqs.benchmark,
                                                         config, &resume_journal, opts);
  expect_same_results(serial, resumed);
  EXPECT_EQ(serial_bytes, util::read_text_file(dir_ / "resume.jsonl"));
}

}  // namespace
}  // namespace astromlab
