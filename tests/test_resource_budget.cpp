// Memory budget and degradation ladder: tracked-byte accounting
// (acquire/release/peak/domains, reserve-before-allocate so a binding
// limit is never exceeded), TrackedAllocator via tensor storage, lazy KV
// charging, injected allocation failure, and the supervisor's ladder —
// evict prefix cache, shrink parallelism, shed as last resort — including
// a real token-method run whose budget binds mid-run, forces an eviction,
// and still scores bit-identically to the unconstrained reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "corpus/corpora.hpp"
#include "eval/journal.hpp"
#include "eval/scorer.hpp"
#include "eval/supervisor.hpp"
#include "eval/token_method.hpp"
#include "nn/gpt.hpp"
#include "tensor/tensor.hpp"
#include "tokenizer/bpe.hpp"
#include "util/cli.hpp"
#include "util/fault_injection.hpp"
#include "util/io.hpp"
#include "util/resource_budget.hpp"
#include "util/rng.hpp"

namespace astromlab {
namespace {

namespace fs = std::filesystem;
using eval::EvalRunOptions;
using eval::QuestionResult;
using eval::Supervisor;
using util::MemoryDomain;
using util::MemoryReservation;
using util::ResourceBudget;
using util::ResourceExhaustedError;

class ResourceBudgetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::FaultInjector::instance().disarm();
    ResourceBudget::instance().reset_for_testing();
    base_ = ResourceBudget::instance().used_bytes();
  }
  void TearDown() override {
    util::FaultInjector::instance().disarm();
    ResourceBudget::instance().reset_for_testing();
  }

  /// Tracked bytes live before this test body ran (normally 0; accounting
  /// assertions are written as deltas so they stay robust either way).
  std::size_t base_ = 0;
};

TEST_F(ResourceBudgetTest, AccountingTracksUsedPeakAndDomains) {
  auto& budget = ResourceBudget::instance();
  budget.acquire(1000, MemoryDomain::kTensor);
  budget.acquire(500, MemoryDomain::kKvCache);
  EXPECT_EQ(budget.used_bytes(), base_ + 1500);
  EXPECT_EQ(budget.domain_bytes(MemoryDomain::kTensor), 1000u);
  EXPECT_EQ(budget.domain_bytes(MemoryDomain::kKvCache), 500u);
  EXPECT_GE(budget.peak_bytes(), base_ + 1500);

  budget.release(500, MemoryDomain::kKvCache);
  EXPECT_EQ(budget.used_bytes(), base_ + 1000);
  EXPECT_GE(budget.peak_bytes(), base_ + 1500);  // high-water mark survives release
  EXPECT_EQ(budget.domain_bytes(MemoryDomain::kKvCache), 0u);

  budget.release(1000, MemoryDomain::kTensor);
  EXPECT_EQ(budget.used_bytes(), base_);
  EXPECT_EQ(budget.denials(), 0u);
}

TEST_F(ResourceBudgetTest, BindingLimitDeniesBeforeChargingSoPeakNeverExceedsIt) {
  auto& budget = ResourceBudget::instance();
  budget.set_limit_bytes(base_ + 4096);

  budget.acquire(3000, MemoryDomain::kScratch);
  // Over the line: thrown *before* charging, so used/peak are untouched.
  EXPECT_THROW(budget.acquire(2000, MemoryDomain::kScratch), ResourceExhaustedError);
  EXPECT_EQ(budget.used_bytes(), base_ + 3000);
  EXPECT_EQ(budget.denials(), 1u);

  // An exact fit is allowed; one byte more is not.
  budget.acquire(1096, MemoryDomain::kScratch);
  EXPECT_EQ(budget.used_bytes(), budget.limit_bytes());
  EXPECT_THROW(budget.acquire(1, MemoryDomain::kScratch), ResourceExhaustedError);
  EXPECT_LE(budget.peak_bytes(), budget.limit_bytes());
  EXPECT_EQ(budget.denials(), 2u);

  // The error doubles as std::bad_alloc for the question-boundary handler.
  try {
    budget.acquire(64, MemoryDomain::kScratch);
    FAIL() << "acquire past the limit must throw";
  } catch (const std::bad_alloc& error) {
    EXPECT_NE(std::string(error.what()).find("memory budget exceeded"), std::string::npos);
  }

  budget.release(4096, MemoryDomain::kScratch);
}

TEST_F(ResourceBudgetTest, TensorStorageChargesTheTensorDomain) {
  auto& budget = ResourceBudget::instance();
  const std::size_t tensor_base = budget.domain_bytes(MemoryDomain::kTensor);
  {
    tensor::Tensor t({32, 48});
    EXPECT_GE(budget.domain_bytes(MemoryDomain::kTensor),
              tensor_base + 32 * 48 * sizeof(float));
    EXPECT_GE(budget.used_bytes(), base_ + 32 * 48 * sizeof(float));
  }
  EXPECT_EQ(budget.domain_bytes(MemoryDomain::kTensor), tensor_base);
  EXPECT_EQ(budget.used_bytes(), base_);

  // A tensor that cannot fit fails as bad_alloc and charges nothing.
  // (Reset first: the peak-vs-limit contract only covers acquisitions
  // made while the limit is in force, not the high-water from above.)
  budget.reset_for_testing();
  budget.set_limit_bytes(base_ + 1024);
  EXPECT_THROW(tensor::Tensor({512, 512}), std::bad_alloc);
  EXPECT_EQ(budget.used_bytes(), base_);
  EXPECT_LE(budget.peak_bytes(), budget.limit_bytes());
}

TEST_F(ResourceBudgetTest, KvCacheChargesLazilyAndReleaseKvReturnsTheBytes) {
  nn::GptConfig config;
  config.vocab_size = 64;
  config.ctx_len = 16;
  config.d_model = 8;
  config.n_heads = 2;
  config.n_layers = 2;
  config.d_ff = 16;
  nn::GptModel model(config);
  util::Rng init(81);
  model.init_weights(init);

  auto& budget = ResourceBudget::instance();
  const std::size_t kv_base = budget.domain_bytes(MemoryDomain::kKvCache);

  nn::GptInference inference(model);
  EXPECT_EQ(inference.kv_bytes(), 0u);  // lazy: construction allocates no K/V
  inference.prompt({nn::Token{1}, nn::Token{2}});
  const std::size_t kv = inference.kv_bytes();
  EXPECT_GT(kv, 0u);
  EXPECT_EQ(budget.domain_bytes(MemoryDomain::kKvCache), kv_base + kv);

  EXPECT_EQ(inference.release_kv(), kv);
  EXPECT_EQ(inference.kv_bytes(), 0u);
  EXPECT_EQ(budget.domain_bytes(MemoryDomain::kKvCache), kv_base);
  EXPECT_EQ(inference.release_kv(), 0u);  // idempotent

  // Still usable: the next prompt reallocates lazily and recharges.
  inference.prompt({nn::Token{3}});
  EXPECT_EQ(inference.kv_bytes(), kv);
  EXPECT_EQ(budget.domain_bytes(MemoryDomain::kKvCache), kv_base + kv);
}

TEST_F(ResourceBudgetTest, DeniedKvAllocationMidEnsureLeavesNothingChargedAndRetries) {
  // Regression: ensure_kv allocates 2 buffers per layer (k then v). A
  // denial on a later buffer used to leave the earlier layers' buffers
  // resident with their bytes charged — the residency fast path then
  // mistook the cache for complete, and the charge could never be
  // released. Allocation-is-charge (TrackedAllocator) plus the
  // build-locals-then-commit structure must unwind to exactly baseline.
  nn::GptConfig config;
  config.vocab_size = 64;
  config.ctx_len = 16;
  config.d_model = 8;
  config.n_heads = 2;
  config.n_layers = 2;
  config.d_ff = 16;
  nn::GptModel model(config);
  util::Rng init(81);
  model.init_weights(init);

  auto& budget = ResourceBudget::instance();
  const std::size_t kv_base = budget.domain_bytes(MemoryDomain::kKvCache);
  const std::size_t used_base = budget.used_bytes();

  nn::GptInference inference(model);
  // 2 layers x {k, v} = 4 acquisitions; fail the 3rd (k of layer 1), after
  // two buffers were successfully charged.
  util::FaultInjector::instance().arm_fail_alloc(3);
  EXPECT_THROW(inference.step(nn::Token{1}), ResourceExhaustedError);
  EXPECT_EQ(budget.domain_bytes(MemoryDomain::kKvCache), kv_base);
  EXPECT_EQ(budget.used_bytes(), used_base);
  EXPECT_EQ(inference.kv_bytes(), 0u);
  EXPECT_EQ(inference.position(), 0u);
  EXPECT_TRUE(inference.history().empty());

  // The object is still usable: the retry re-allocates from scratch and
  // produces exactly the logits a fresh inference produces.
  nn::GptInference oracle(model);
  const std::vector<float>& got = inference.step(nn::Token{1});
  const std::vector<float>& want = oracle.step(nn::Token{1});
  EXPECT_EQ(std::memcmp(got.data(), want.data(), want.size() * sizeof(float)), 0);
  EXPECT_EQ(budget.domain_bytes(MemoryDomain::kKvCache), kv_base + 2 * inference.kv_bytes());
}

TEST_F(ResourceBudgetTest, DeniedSlotKvAllocationLeavesSlotAndCountersClean) {
  nn::GptConfig config;
  config.vocab_size = 64;
  config.ctx_len = 16;
  config.d_model = 8;
  config.n_heads = 2;
  config.n_layers = 2;
  config.d_ff = 16;
  nn::GptModel model(config);
  util::Rng init(82);
  model.init_weights(init);

  auto& budget = ResourceBudget::instance();
  const std::size_t kv_base = budget.domain_bytes(MemoryDomain::kKvCache);

  nn::BatchedInference batch(model, 2);
  util::FaultInjector::instance().arm_fail_alloc(3);  // k0, v0 charge; k1 throws
  EXPECT_THROW(batch.ensure_slot_kv(0), ResourceExhaustedError);
  EXPECT_EQ(budget.domain_bytes(MemoryDomain::kKvCache), kv_base);
  EXPECT_EQ(batch.slot_kv_bytes(0), 0u);

  // Retry succeeds; the double release is idempotent and returns 0 the
  // second time (a doubled release would corrupt the domain counter).
  batch.ensure_slot_kv(0);
  const std::size_t kv = batch.slot_kv_bytes(0);
  EXPECT_GT(kv, 0u);
  EXPECT_EQ(budget.domain_bytes(MemoryDomain::kKvCache), kv_base + kv);
  EXPECT_EQ(batch.release_slot_kv(0), kv);
  EXPECT_EQ(batch.release_slot_kv(0), 0u);
  EXPECT_EQ(budget.domain_bytes(MemoryDomain::kKvCache), kv_base);
}

TEST_F(ResourceBudgetTest, DeniedArenaBlockMidPromptUnwindsPagedChargeExactly) {
  // Paged mode charges block by block as rows are written; a denial
  // mid-prompt must leave the arena consistent (blocks already written
  // stay live and charged, nothing half-charged) and the budget equal to
  // the arena's own accounting.
  nn::GptConfig config;
  config.vocab_size = 64;
  config.ctx_len = 32;
  config.d_model = 8;
  config.n_heads = 2;
  config.n_layers = 2;
  config.d_ff = 16;
  nn::GptModel model(config);
  util::Rng init(83);
  model.init_weights(init);

  auto& budget = ResourceBudget::instance();
  const std::size_t kv_base = budget.domain_bytes(MemoryDomain::kKvCache);
  auto arena = std::make_shared<nn::KvArena>(4, config.d_model);

  nn::GptInference inference(model, arena);
  util::FaultInjector::instance().arm_fail_alloc(6);
  bool threw = false;
  try {
    for (nn::Token t = 0; t < 20; ++t) inference.step(t % 8);
  } catch (const ResourceExhaustedError&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
  EXPECT_EQ(budget.domain_bytes(MemoryDomain::kKvCache), kv_base + arena->total_bytes());
  EXPECT_EQ(arena->total_bytes(), arena->live_blocks() * arena->block_bytes());

  // Releasing the session returns the domain to baseline exactly.
  inference.release_kv();
  EXPECT_EQ(arena->live_blocks(), 0u);
  EXPECT_EQ(budget.domain_bytes(MemoryDomain::kKvCache), kv_base);
}

TEST_F(ResourceBudgetTest, MemoryReservationMovesWithoutDoubleCharging) {
  auto& budget = ResourceBudget::instance();
  MemoryReservation reservation(256, MemoryDomain::kScratch);
  EXPECT_EQ(budget.domain_bytes(MemoryDomain::kScratch), 256u);

  MemoryReservation moved(std::move(reservation));
  EXPECT_EQ(reservation.bytes(), 0u);
  EXPECT_EQ(moved.bytes(), 256u);
  EXPECT_EQ(budget.domain_bytes(MemoryDomain::kScratch), 256u);

  MemoryReservation assigned;
  assigned = std::move(moved);
  EXPECT_EQ(budget.domain_bytes(MemoryDomain::kScratch), 256u);

  assigned.release();
  EXPECT_EQ(budget.domain_bytes(MemoryDomain::kScratch), 0u);
  assigned.release();  // releasing twice is a no-op
  EXPECT_EQ(budget.used_bytes(), base_);
}

TEST_F(ResourceBudgetTest, InjectedAllocFailureFiresOnceAtTheArmedAcquisition) {
  util::FaultInjector::instance().arm_fail_alloc(2);
  auto& budget = ResourceBudget::instance();
  budget.acquire(64, MemoryDomain::kScratch);
  EXPECT_THROW(budget.acquire(64, MemoryDomain::kScratch), ResourceExhaustedError);
  budget.acquire(64, MemoryDomain::kScratch);  // trigger consumed, disarmed again
  EXPECT_EQ(budget.used_bytes(), base_ + 128);
  EXPECT_EQ(budget.denials(), 1u);
  budget.release(128, MemoryDomain::kScratch);
}

TEST_F(ResourceBudgetTest, InitFromArgsParsesMemoryBudgetMb) {
  const char* argv[] = {"test", "--memory-budget-mb=2"};
  const util::ArgParser args(2, argv);
  ResourceBudget::init_from_args(args);
  EXPECT_EQ(ResourceBudget::instance().limit_bytes(), std::size_t{2} * 1024 * 1024);
}

// ---------------------------------------------------------------------------
// Degradation ladder at the supervisor level: synthetic QuestionFns throw
// ResourceExhaustedError at chosen (question, attempt) points so each rung
// fires deterministically.

util::RetryPolicy fast_retry() {
  util::RetryPolicy policy;
  policy.max_retries = 2;
  policy.backoff_initial_ms = 0.01;
  policy.backoff_max_ms = 0.05;
  return policy;
}

std::vector<QuestionResult> prefilled(std::size_t n) {
  std::vector<QuestionResult> results(n);
  for (std::size_t q = 0; q < n; ++q) {
    results[q].correct = static_cast<int>(q % 4);
    results[q].tier = corpus::Tier::kCanonical;
  }
  return results;
}

std::vector<std::size_t> all_pending(std::size_t n) {
  std::vector<std::size_t> pending(n);
  for (std::size_t q = 0; q < n; ++q) pending[q] = q;
  return pending;
}

/// Deterministic answer used by every ladder QuestionFn below.
QuestionResult answer(std::size_t q, const std::vector<QuestionResult>& results) {
  QuestionResult result = results[q];
  result.predicted = static_cast<int>((q * 7 + 1) % 4);
  result.method = eval::ExtractionMethod::kRegex;
  return result;
}

class LadderTest : public ResourceBudgetTest {
 protected:
  void SetUp() override {
    ResourceBudgetTest::SetUp();
    dir_ = fs::temp_directory_path() /
           ("astromlab_ladder_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
    ResourceBudgetTest::TearDown();
  }

  fs::path dir_;
};

TEST_F(LadderTest, EvictionRungRelievesPressureAndTheQuestionRetries) {
  constexpr std::size_t kQuestions = 6;
  auto results = prefilled(kQuestions);
  std::atomic<int> evict_calls{0};
  std::array<std::atomic<int>, kQuestions> attempts{};

  EvalRunOptions options;
  options.retry = fast_retry();
  options.evict_cache = [&evict_calls]() -> std::size_t {
    ++evict_calls;
    return 4096;
  };

  Supervisor supervisor(options);
  supervisor.run(results, all_pending(kQuestions),
                 [&](std::size_t q, std::size_t, const util::CancelToken&) {
                   if (q == 2 && attempts[q]++ == 0) {
                     throw ResourceExhaustedError("simulated pressure");
                   }
                   return answer(q, results);
                 },
                 nullptr);

  EXPECT_EQ(supervisor.stats().cache_evictions, 1u);
  EXPECT_EQ(evict_calls.load(), 1);
  EXPECT_EQ(supervisor.stats().shed_questions, 0u);
  EXPECT_EQ(supervisor.stats().degraded_questions, 0u);
  for (std::size_t q = 0; q < kQuestions; ++q) {
    EXPECT_FALSE(results[q].degraded) << "question " << q;
    EXPECT_EQ(results[q].predicted, static_cast<int>((q * 7 + 1) % 4)) << "question " << q;
  }
  // A pressure retry is relief, not a transient fault: no retry is counted.
  EXPECT_EQ(results[2].retries, 0);
  EXPECT_EQ(supervisor.stats().total_retries, 0u);
}

TEST_F(LadderTest, ParallelismHalvesAndRetiredSlotsReleaseTheirScratch) {
  constexpr std::size_t kQuestions = 8;
  auto results = prefilled(kQuestions);
  std::array<std::atomic<int>, kQuestions> attempts{};
  std::mutex released_mutex;
  std::vector<std::size_t> released;

  EvalRunOptions options;
  options.workers = 4;
  options.retry = fast_retry();
  // No evict_cache hook: rung 1 is pre-spent, pressure goes straight to
  // shrinking parallelism.
  options.release_slot_memory = [&](std::size_t slot) -> std::size_t {
    std::lock_guard<std::mutex> lock(released_mutex);
    released.push_back(slot);
    return 1024;
  };

  Supervisor supervisor(options);
  supervisor.run(results, all_pending(kQuestions),
                 [&](std::size_t q, std::size_t, const util::CancelToken&) {
                   if (q == 1 && attempts[q]++ < 2) {
                     throw ResourceExhaustedError("simulated pressure");
                   }
                   return answer(q, results);
                 },
                 nullptr);

  // Two pressure events walk the cap 4 -> 2 -> 1; the third attempt runs.
  EXPECT_EQ(supervisor.stats().parallelism_reductions, 2u);
  EXPECT_EQ(supervisor.stats().cache_evictions, 0u);
  EXPECT_EQ(supervisor.stats().shed_questions, 0u);
  for (std::size_t q = 0; q < kQuestions; ++q) {
    EXPECT_FALSE(results[q].degraded) << "question " << q;
    EXPECT_EQ(results[q].predicted, static_cast<int>((q * 7 + 1) % 4)) << "question " << q;
  }
  // Every slot above the final cap of 1 retires exactly once — whether it
  // was free at reduction time or returned by a finishing question.
  std::sort(released.begin(), released.end());
  EXPECT_EQ(released, (std::vector<std::size_t>{1, 2, 3}));
}

TEST_F(LadderTest, ShedIsTheLastResortAndIsJournalled) {
  constexpr std::size_t kQuestions = 5;
  auto results = prefilled(kQuestions);
  std::atomic<int> evict_calls{0};

  EvalRunOptions options;  // serial: the cap is already 1, rung 2 is unavailable
  options.retry = fast_retry();
  options.evict_cache = [&evict_calls]() -> std::size_t {
    ++evict_calls;
    return 2048;
  };

  eval::EvalJournal journal(dir_ / "shed.jsonl");
  Supervisor supervisor(options);
  // Question 3 is under unrelievable pressure: every attempt throws, so
  // the ladder walks evict -> (no parallelism to shrink) -> shed. The run
  // must finish anyway.
  supervisor.run(results, all_pending(kQuestions),
                 [&](std::size_t q, std::size_t, const util::CancelToken&) -> QuestionResult {
                   if (q == 3) throw ResourceExhaustedError("unrelievable pressure");
                   return answer(q, results);
                 },
                 &journal);

  EXPECT_EQ(evict_calls.load(), 1);
  EXPECT_EQ(supervisor.stats().cache_evictions, 1u);
  EXPECT_EQ(supervisor.stats().shed_questions, 1u);
  EXPECT_EQ(supervisor.stats().degraded_questions, 1u);
  EXPECT_TRUE(results[3].shed);
  EXPECT_TRUE(results[3].degraded);
  EXPECT_EQ(results[3].predicted, -1);
  EXPECT_EQ(results[3].method, eval::ExtractionMethod::kFailed);
  for (std::size_t q = 0; q < kQuestions; ++q) {
    if (q != 3) {
      EXPECT_FALSE(results[q].degraded) << "question " << q;
    }
  }

  // Shedding is accounted, not silently folded into unanswered.
  const eval::ScoreSummary summary = eval::summarize(results);
  EXPECT_EQ(summary.total, kQuestions);
  EXPECT_EQ(summary.shed, 1u);
  EXPECT_EQ(summary.degraded, 1u);
  EXPECT_EQ(summary.unanswered, 1u);

  // The shed flag survives a journal round-trip, so a resumed run does not
  // re-answer a question the ladder deliberately dropped.
  eval::EvalJournal reloaded(dir_ / "shed.jsonl");
  EXPECT_EQ(reloaded.size(), kQuestions);
  const auto entry = reloaded.lookup(3);
  ASSERT_TRUE(entry.has_value());
  EXPECT_TRUE(entry->shed);
  EXPECT_TRUE(entry->degraded);
  EXPECT_EQ(entry->predicted, -1);
}

TEST_F(LadderTest, RelievedPressureKeepsSerialAndParallelBitIdentical) {
  constexpr std::size_t kQuestions = 8;
  const auto run = [&](std::size_t workers, const fs::path& journal_path) {
    ResourceBudget::instance().reset_for_testing();
    auto results = prefilled(kQuestions);
    std::array<std::atomic<int>, kQuestions> attempts{};
    EvalRunOptions options;
    options.workers = workers;
    options.retry = fast_retry();
    options.evict_cache = []() -> std::size_t { return 4096; };
    eval::EvalJournal journal(journal_path);
    Supervisor supervisor(options);
    supervisor.run(results, all_pending(kQuestions),
                   [&](std::size_t q, std::size_t, const util::CancelToken&) {
                     if (q == 1 && attempts[q]++ == 0) {
                       throw ResourceExhaustedError("simulated pressure");
                     }
                     return answer(q, results);
                   },
                   &journal);
    EXPECT_EQ(supervisor.stats().cache_evictions, 1u);
    EXPECT_EQ(supervisor.stats().shed_questions, 0u);
    return results;
  };

  const auto serial = run(0, dir_ / "serial.jsonl");
  const auto parallel = run(4, dir_ / "parallel.jsonl");

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t q = 0; q < serial.size(); ++q) {
    EXPECT_EQ(serial[q].predicted, parallel[q].predicted) << "question " << q;
    EXPECT_EQ(serial[q].retries, parallel[q].retries) << "question " << q;
    EXPECT_EQ(serial[q].degraded, parallel[q].degraded) << "question " << q;
    EXPECT_EQ(serial[q].shed, parallel[q].shed) << "question " << q;
  }
  EXPECT_EQ(util::read_text_file(dir_ / "serial.jsonl"),
            util::read_text_file(dir_ / "parallel.jsonl"));
}

// ---------------------------------------------------------------------------
// End-to-end: a budget that binds mid-run forces the ladder's eviction
// rung inside a real token-method benchmark, the peak never passes the
// limit, and the constrained scores stay bit-identical to unconstrained.

struct TinyWorld {
  corpus::KnowledgeBase kb;
  corpus::McqSplit mcqs;
  tokenizer::BpeTokenizer tok;
};

TinyWorld make_eval_world() {
  TinyWorld world;
  corpus::KbConfig kb_config;
  kb_config.n_topics = 4;
  kb_config.entities_per_topic = 3;
  kb_config.facts_per_entity = 2;
  kb_config.seed = 61;
  world.kb = corpus::KnowledgeBase::generate(kb_config);
  corpus::McqGenConfig mcq_config;
  mcq_config.questions_per_topic = 2;
  mcq_config.seed = 62;
  world.mcqs = corpus::generate_mcqs(world.kb, mcq_config);
  tokenizer::BpeTrainConfig tok_config;
  tok_config.vocab_size = 420;
  world.tok = tokenizer::BpeTokenizer::train(
      corpus::build_tokenizer_training_text(world.kb, world.mcqs.practice, 63), tok_config);
  return world;
}

nn::GptModel make_eval_model(const TinyWorld& world) {
  nn::GptConfig config;
  config.vocab_size = world.tok.vocab_size();
  config.ctx_len = 512;
  config.d_model = 24;
  config.n_heads = 2;
  config.n_layers = 1;
  config.d_ff = 48;
  nn::GptModel model(config);
  util::Rng rng(64);
  model.init_weights(rng);
  return model;
}

TEST_F(LadderTest, BindingBudgetForcesEvictionButNeverChangesScores) {
  const TinyWorld world = make_eval_world();
  const nn::GptModel model = make_eval_model(world);

  // Unconstrained reference: serial, cache off.
  eval::EvalJournal reference_journal(dir_ / "reference.jsonl");
  const auto reference = eval::run_token_benchmark(model, world.tok, world.mcqs.benchmark,
                                                   world.mcqs.practice, &reference_journal);

  // One inference's K/V footprint (a fixed function of the model config).
  std::size_t kv = 0;
  {
    nn::GptInference probe(model);
    probe.prompt({nn::Token{1}});
    kv = probe.kv_bytes();
  }
  ASSERT_GT(kv, 0u);

  // Room for the cache encoder's K/V but not encoder + worker scratch at
  // once: the first question must hit the budget, and the ladder's only
  // way through is to evict the cache.
  auto& budget = ResourceBudget::instance();
  budget.set_limit_bytes(budget.used_bytes() + kv + kv / 2);

  EvalRunOptions options;  // serial, so shrinking parallelism is no escape
  options.prefix_cache = true;
  eval::PrefixCacheStats stats;
  eval::EvalJournal constrained_journal(dir_ / "constrained.jsonl");
  const auto constrained = eval::run_token_benchmark(
      model, world.tok, world.mcqs.benchmark, world.mcqs.practice, &constrained_journal,
      eval::TokenMethodConfig{}, options, &stats);

  // The budget held: tracked peak never passed the limit, the denial was
  // real, and the run relieved pressure by evicting instead of shedding.
  EXPECT_LE(budget.peak_bytes(), budget.limit_bytes());
  EXPECT_GT(budget.denials(), 0u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.resident_bytes, 0u);

  // Eviction changes prefill work, never answers: scores and journal
  // bytes match the unconstrained reference exactly, nothing was shed.
  ASSERT_EQ(reference.size(), constrained.size());
  for (std::size_t q = 0; q < reference.size(); ++q) {
    EXPECT_EQ(reference[q].predicted, constrained[q].predicted) << "question " << q;
    EXPECT_EQ(reference[q].degraded, constrained[q].degraded) << "question " << q;
    EXPECT_FALSE(constrained[q].shed) << "question " << q;
  }
  EXPECT_EQ(util::read_text_file(dir_ / "reference.jsonl"),
            util::read_text_file(dir_ / "constrained.jsonl"));

  budget.set_limit_bytes(0);
}

}  // namespace
}  // namespace astromlab
