// In-process integration tests for the serve subsystem: HTTP plumbing,
// admission control, deadlines, sessions, hot swap, and graceful drain.
// Servers bind port 0 (ephemeral) so tests never collide; the expensive
// world+model build is shared through a process-lifetime ServedWorld.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "eval/journal.hpp"
#include "eval/token_method.hpp"
#include "json/json.hpp"
#include "serve/http.hpp"
#include "serve/server.hpp"
#include "serve/world.hpp"
#include "util/io.hpp"

namespace astromlab::serve {
namespace {

core::WorldConfig tiny_config() {
  core::WorldConfig config;
  config.kb.n_topics = 3;
  config.kb.entities_per_topic = 3;
  config.kb.facts_per_entity = 2;
  config.mcq.questions_per_topic = 2;
  config.vocab_size = 420;
  // The two-shot MCQ prompts overflow the default ctx=416 at this tiny
  // vocab (little merging, long token streams); 640 fits comfortably.
  config.ctx_len = 640;
  return config;
}

/// One world+model for the whole binary — each server still gets its own
/// sessions, gates, and counters.
const std::shared_ptr<const ServedWorld>& shared_world() {
  static const std::shared_ptr<const ServedWorld> world =
      build_served_world(core::Scale::kS7, tiny_config(), /*generation=*/1);
  return world;
}

ServerConfig quiet_config() {
  ServerConfig config;
  config.port = 0;
  config.workers = 2;
  config.stats_log_seconds = 0.0;
  return config;
}

std::string mcq_body(std::size_t index) {
  json::Value body = json::Value::object();
  body.set("question_index", static_cast<std::int64_t>(index));
  return body.dump();
}

json::Value post_json(HttpClient& client, const std::string& target,
                      const std::string& body, int expected_status) {
  const std::optional<HttpResponse> response =
      client.request("POST", target, body, 30.0);
  EXPECT_TRUE(response.has_value()) << target << ": no response";
  if (!response.has_value()) return json::Value();
  EXPECT_EQ(response->status, expected_status) << target << ": " << response->body;
  return json::parse(response->body);
}

TEST(Serve, McqOverHttpIsBitIdenticalToOffline) {
  const auto& world = shared_world();
  InferenceServer server(world, quiet_config());
  server.start();
  HttpClient client("127.0.0.1", server.port());

  const auto& questions = world->world.mcqs.benchmark;
  ASSERT_FALSE(questions.empty());
  for (std::size_t q = 0; q < questions.size(); ++q) {
    const int offline =
        eval::token_predict(world->model, world->world.tok, world->letters,
                            questions[q], world->fewshot, nullptr,
                            world->mcq_cache.get(), nullptr);
    const json::Value doc = post_json(client, "/v1/mcq", mcq_body(q), 200);
    EXPECT_EQ(static_cast<int>(doc.get_number("predicted", -2.0)), offline)
        << "question " << q << " diverged from the offline evaluator";
    if (offline >= 0) {
      const std::string expected_letter(1, static_cast<char>('A' + offline));
      EXPECT_EQ(doc.get_string("answer", ""), expected_letter);
    }
  }
}

TEST(Serve, HealthzReportsStatusAndMetricsDump) {
  InferenceServer server(shared_world(), quiet_config());
  server.start();
  HttpClient client("127.0.0.1", server.port());

  const std::optional<HttpResponse> health = client.request("GET", "/healthz", "");
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->status, 200);
  const json::Value doc = json::parse(health->body);
  EXPECT_EQ(doc.get_string("status", ""), "ok");
  EXPECT_FALSE(doc.get_bool("draining", true));
  EXPECT_GT(doc.get_number("benchmark_questions", 0.0), 0.0);
  EXPECT_EQ(static_cast<int>(doc.get_number("model_generation", 0.0)), 1);

  const std::optional<HttpResponse> metrics = client.request("GET", "/metrics", "");
  ASSERT_TRUE(metrics.has_value());
  EXPECT_EQ(metrics->status, 200);
  EXPECT_NE(metrics->body.find("serve.http_requests"), std::string::npos);
  EXPECT_NE(metrics->body.find("serve.request_latency_ms_p99"), std::string::npos);
}

TEST(Serve, RateLimitShedsWithRetryAfter) {
  ServerConfig config = quiet_config();
  config.rate_limit_rps = 0.01;  // one-token bucket that refills glacially
  config.rate_burst = 1.0;
  InferenceServer server(shared_world(), config);
  server.start();
  HttpClient client("127.0.0.1", server.port());

  const std::optional<HttpResponse> first =
      client.request("POST", "/v1/mcq", mcq_body(0), 30.0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->status, 200);

  const std::optional<HttpResponse> second =
      client.request("POST", "/v1/mcq", mcq_body(0), 30.0);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->status, 429);
  ASSERT_NE(second->headers.find("retry-after"), second->headers.end());
  EXPECT_GE(std::stoi(second->headers.at("retry-after")), 1);
  // Health stays green while requests shed: shedding is not an outage.
  const std::optional<HttpResponse> health = client.request("GET", "/healthz", "");
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->status, 200);
}

TEST(Serve, ConnectionGateShedsAtAcceptWhenFull) {
  ServerConfig config = quiet_config();
  config.workers = 1;
  config.queue_depth = 0;  // capacity: exactly one connection
  InferenceServer server(shared_world(), config);
  server.start();

  HttpClient occupant("127.0.0.1", server.port());
  const std::optional<HttpResponse> held =
      occupant.request("POST", "/v1/mcq", mcq_body(0), 30.0);
  ASSERT_TRUE(held.has_value());
  EXPECT_EQ(held->status, 200);
  // The keep-alive connection holds the only admission ticket, so
  // readiness now reports overloaded — 503 is the load-balancer signal,
  // not an error.
  const std::optional<HttpResponse> health = occupant.request("GET", "/healthz", "");
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->status, 503);
  EXPECT_EQ(json::parse(health->body).get_string("status", ""), "overloaded");
  // A second connection is shed with 429 + Retry-After at accept.
  HttpClient overflow("127.0.0.1", server.port());
  const std::optional<HttpResponse> shed =
      overflow.request("POST", "/v1/mcq", mcq_body(0), 30.0);
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(shed->status, 429);
  EXPECT_NE(shed->headers.find("retry-after"), shed->headers.end());

  // Releasing the occupant frees the slot (the handler sees EOF at its
  // next poll slice); the shed client's lazy reconnect then succeeds.
  occupant.close();
  bool recovered = false;
  for (int attempt = 0; attempt < 40 && !recovered; ++attempt) {
    const std::optional<HttpResponse> retry =
        overflow.request("POST", "/v1/mcq", mcq_body(0), 30.0);
    recovered = retry.has_value() && retry->status == 200;
    if (!recovered) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(recovered);
}

TEST(Serve, DeadlineExpiryAnswers504AndCancelsWork) {
  InferenceServer server(shared_world(), quiet_config());
  server.start();
  HttpClient client("127.0.0.1", server.port());

  json::Value body = json::Value::object();
  body.set("question_index", static_cast<std::int64_t>(0));
  body.set("deadline_ms", 0.01);  // expires before the prompt feed finishes
  const std::optional<HttpResponse> response =
      client.request("POST", "/v1/mcq", body.dump(), 30.0);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 504);

  // The expired request must not poison the next one.
  const json::Value ok = post_json(client, "/v1/mcq", mcq_body(0), 200);
  EXPECT_GE(ok.get_number("predicted", -2.0), 0.0);
}

TEST(Serve, SessionReusesKvAndStaysBitIdentical) {
  InferenceServer server(shared_world(), quiet_config());
  server.start();
  HttpClient client("127.0.0.1", server.port());

  json::Value base = json::Value::object();
  base.set("prompt", "the velocity dispersion of the cluster");
  base.set("max_new_tokens", static_cast<std::int64_t>(12));
  base.set("temperature", 0.0);
  base.set("seed", static_cast<std::int64_t>(7));

  // Sessionless reference.
  const json::Value plain = post_json(client, "/v1/generate", base.dump(), 200);
  const std::string reference = plain.get_string("text", "");
  EXPECT_FALSE(reference.empty());

  // Same request through a session: identical output, cold cache.
  base.set("session", "conv-1");
  const json::Value first = post_json(client, "/v1/generate", base.dump(), 200);
  EXPECT_EQ(first.get_string("text", ""), reference);
  EXPECT_EQ(first.get_number("reused_prefix_tokens", -1.0), 0.0);

  // Extending the conversation reuses the session's KV prefix.
  json::Value extended = json::Value::object();
  extended.set("prompt", std::string("the velocity dispersion of the cluster") +
                             reference + " and the inferred mass");
  extended.set("max_new_tokens", static_cast<std::int64_t>(8));
  extended.set("temperature", 0.0);
  extended.set("seed", static_cast<std::int64_t>(7));
  extended.set("session", "conv-1");
  const json::Value second = post_json(client, "/v1/generate", extended.dump(), 200);
  EXPECT_GT(second.get_number("reused_prefix_tokens", 0.0), 0.0);
  EXPECT_GE(server.session_count(), 1u);
}

TEST(Serve, HotSwapBumpsGenerationAndStaysConsistent) {
  const auto& world = shared_world();
  InferenceServer server(world, quiet_config());
  server.start();
  HttpClient client("127.0.0.1", server.port());

  const int offline =
      eval::token_predict(world->model, world->world.tok, world->letters,
                          world->world.mcqs.benchmark[0], world->fewshot, nullptr,
                          world->mcq_cache.get(), nullptr);

  json::Value swap = json::Value::object();
  swap.set("scale", "S7");
  const json::Value swapped = post_json(client, "/admin/model", swap.dump(), 200);
  EXPECT_EQ(static_cast<int>(swapped.get_number("model_generation", 0.0)), 2);
  EXPECT_EQ(server.current_world()->generation, 2u);
  // Sessions from the old generation are dropped — their KV refers to
  // retired weights.
  EXPECT_EQ(server.session_count(), 0u);

  // Same scale ⇒ same deterministic weight seed ⇒ answers unchanged.
  const json::Value doc = post_json(client, "/v1/mcq", mcq_body(0), 200);
  EXPECT_EQ(static_cast<int>(doc.get_number("predicted", -2.0)), offline);
  EXPECT_EQ(static_cast<int>(doc.get_number("model_generation", 0.0)), 2);
}

TEST(Serve, SwapMidSessionDropsStaleKvAndRecomputesFromScratch) {
  // Regression: a session created before a hot swap must not splice its
  // old-generation KV prefix into the new model. The continuation after
  // the swap has to report a cold cache (reused_prefix_tokens == 0) and
  // produce byte-identical text to a sessionless request against the new
  // world — any prefix reuse here would decode the new weights on top of
  // retired-generation KV rows.
  InferenceServer server(shared_world(), quiet_config());
  server.start();
  HttpClient client("127.0.0.1", server.port());

  json::Value base = json::Value::object();
  base.set("prompt", "spectral classification of the candidate");
  base.set("max_new_tokens", static_cast<std::int64_t>(10));
  base.set("temperature", 0.0);
  base.set("seed", static_cast<std::int64_t>(11));
  base.set("session", "conv-swap");
  const json::Value first = post_json(client, "/v1/generate", base.dump(), 200);
  const std::string continuation = first.get_string("text", "");
  ASSERT_FALSE(continuation.empty());
  ASSERT_GE(server.session_count(), 1u);

  json::Value swap = json::Value::object();
  swap.set("scale", "S7");
  post_json(client, "/admin/model", swap.dump(), 200);
  ASSERT_EQ(server.session_count(), 0u);

  json::Value extended = json::Value::object();
  extended.set("prompt", std::string("spectral classification of the candidate") +
                             continuation + " suggests a subdwarf");
  extended.set("max_new_tokens", static_cast<std::int64_t>(8));
  extended.set("temperature", 0.0);
  extended.set("seed", static_cast<std::int64_t>(11));
  extended.set("session", "conv-swap");
  const json::Value after = post_json(client, "/v1/generate", extended.dump(), 200);
  EXPECT_EQ(after.get_number("reused_prefix_tokens", -1.0), 0.0);
  EXPECT_EQ(static_cast<int>(after.get_number("model_generation", 0.0)), 2);

  // Oracle: the same extended request, sessionless, against the swapped
  // server — bytes must match the post-swap session continuation.
  json::Value fresh = extended;
  fresh.set("session", "");
  const json::Value oracle = post_json(client, "/v1/generate", fresh.dump(), 200);
  EXPECT_EQ(after.get_string("text", ""), oracle.get_string("text", ""));

  // The recreated session is warm again for the next turn.
  EXPECT_GE(server.session_count(), 1u);
}

TEST(Serve, GracefulDrainFlushesJournalAndRejectsNewWork) {
  const std::filesystem::path journal_path =
      std::filesystem::temp_directory_path() / "serve_test_journal.jsonl";
  std::error_code ec;
  std::filesystem::remove(journal_path, ec);
  {
    eval::EvalJournal journal(journal_path.string());
    InferenceServer server(shared_world(), quiet_config(), &journal);
    server.start();
    HttpClient client("127.0.0.1", server.port());
    for (std::size_t q = 0; q < 3; ++q) {
      const json::Value doc = post_json(client, "/v1/mcq", mcq_body(q % 2), 200);
      EXPECT_GE(doc.get_number("predicted", -2.0), -1.0);
    }

    server.begin_drain();
    EXPECT_TRUE(server.draining());
    // The acceptor observes the drain flag within its 100ms poll slice and
    // closes the listening socket; a late connection is refused outright
    // instead of rotting in the kernel backlog.
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    bool connect_failed = false;
    HttpClient late("127.0.0.1", server.port());
    const std::optional<HttpResponse> refused =
        late.request("POST", "/v1/mcq", mcq_body(0), 5.0, {}, &connect_failed);
    EXPECT_FALSE(refused.has_value());
    EXPECT_TRUE(connect_failed);
    server.shutdown();
  }
  // Journal flushed: one durable line per answered benchmark question.
  const std::string journal_text = util::read_text_file(journal_path);
  std::size_t lines = 0;
  for (const char c : journal_text) lines += c == '\n' ? 1 : 0;
  EXPECT_GE(lines, 3u);
  std::filesystem::remove(journal_path, ec);
}

TEST(Serve, DrainCancelsInflightWorkWithinGrace) {
  ServerConfig config = quiet_config();
  config.drain_grace_seconds = 0.05;  // cancel stragglers almost immediately
  InferenceServer server(shared_world(), config);
  server.start();

  std::thread slow([port = server.port()] {
    HttpClient client("127.0.0.1", port);
    json::Value body = json::Value::object();
    body.set("prompt", "a long generation that the drain interrupts");
    body.set("max_new_tokens", static_cast<std::int64_t>(256));
    body.set("temperature", 0.0);
    const std::optional<HttpResponse> response =
        client.request("POST", "/v1/generate", body.dump(), 30.0);
    // Finished before the grace expired (200) or was cancelled by the
    // drain (503); a hang or a crash would fail the harness timeout.
    if (response.has_value()) {
      EXPECT_TRUE(response->status == 200 || response->status == 503)
          << response->status;
    }
  });
  // Let the request get in flight, then pull the plug.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server.begin_drain();
  server.shutdown();
  slow.join();
  EXPECT_EQ(server.in_flight(), 0u);
}

TEST(Serve, BatchedMcqConcurrentRequestsByteIdenticalToSerial) {
  // The decode_batch >= 2 server coalesces concurrent /v1/mcq requests
  // into shared decode steps; the contract is that batch composition is
  // invisible at the byte level — every response body matches the serial
  // server's exactly, no matter who shared the batch.
  const auto& world = shared_world();
  InferenceServer serial(world, quiet_config());
  serial.start();
  ServerConfig batched_config = quiet_config();
  batched_config.workers = 4;
  batched_config.decode_batch = 4;
  InferenceServer batched(world, batched_config);
  batched.start();

  const std::size_t n = world->world.mcqs.benchmark.size();
  ASSERT_GE(n, 2u);
  std::vector<std::string> serial_bodies(n);
  {
    HttpClient client("127.0.0.1", serial.port());
    for (std::size_t q = 0; q < n; ++q) {
      const std::optional<HttpResponse> response =
          client.request("POST", "/v1/mcq", mcq_body(q), 30.0);
      ASSERT_TRUE(response.has_value()) << "serial question " << q;
      ASSERT_EQ(response->status, 200) << response->body;
      serial_bodies[q] = response->body;
    }
  }

  // Two rounds of all-questions-at-once so requests genuinely co-reside
  // in the engine's batch (4 slots, n > 4 requests racing for them).
  for (int round = 0; round < 2; ++round) {
    std::vector<std::string> batched_bodies(n);
    std::vector<int> statuses(n, 0);
    std::vector<std::thread> clients;
    clients.reserve(n);
    for (std::size_t q = 0; q < n; ++q) {
      clients.emplace_back([&, q, port = batched.port()] {
        HttpClient client("127.0.0.1", port);
        const std::optional<HttpResponse> response =
            client.request("POST", "/v1/mcq", mcq_body(q), 30.0);
        if (response.has_value()) {
          statuses[q] = response->status;
          batched_bodies[q] = response->body;
        }
      });
    }
    for (auto& thread : clients) thread.join();
    for (std::size_t q = 0; q < n; ++q) {
      ASSERT_EQ(statuses[q], 200) << "round " << round << " question " << q;
      EXPECT_EQ(batched_bodies[q], serial_bodies[q])
          << "round " << round << " question " << q
          << ": batched response bytes diverged from serial";
    }
  }
}

TEST(Serve, MidBatchDeadlineAnswers504WithoutDisturbingNeighbours) {
  // One request in a full batch expires mid-flight; it must answer 504
  // while its batch-mates complete with the same bytes a serial server
  // produces. Slot-granular cancellation must not leak across slots.
  const auto& world = shared_world();
  InferenceServer serial(world, quiet_config());
  serial.start();
  ServerConfig batched_config = quiet_config();
  batched_config.workers = 4;
  batched_config.decode_batch = 4;
  InferenceServer batched(world, batched_config);
  batched.start();

  const std::size_t n_neighbours = 3;
  std::vector<std::string> serial_bodies(n_neighbours);
  {
    HttpClient client("127.0.0.1", serial.port());
    for (std::size_t q = 0; q < n_neighbours; ++q) {
      const std::optional<HttpResponse> response =
          client.request("POST", "/v1/mcq", mcq_body(q), 30.0);
      ASSERT_TRUE(response.has_value());
      ASSERT_EQ(response->status, 200);
      serial_bodies[q] = response->body;
    }
  }

  std::vector<std::string> batched_bodies(n_neighbours);
  std::vector<int> statuses(n_neighbours, 0);
  int doomed_status = 0;
  std::vector<std::thread> clients;
  for (std::size_t q = 0; q < n_neighbours; ++q) {
    clients.emplace_back([&, q, port = batched.port()] {
      HttpClient client("127.0.0.1", port);
      const std::optional<HttpResponse> response =
          client.request("POST", "/v1/mcq", mcq_body(q), 30.0);
      if (response.has_value()) {
        statuses[q] = response->status;
        batched_bodies[q] = response->body;
      }
    });
  }
  clients.emplace_back([&, port = batched.port()] {
    HttpClient client("127.0.0.1", port);
    json::Value body = json::Value::object();
    body.set("question_index", static_cast<std::int64_t>(0));
    body.set("deadline_ms", 0.01);  // expires before the prompt feed finishes
    const std::optional<HttpResponse> response =
        client.request("POST", "/v1/mcq", body.dump(), 30.0);
    if (response.has_value()) doomed_status = response->status;
  });
  for (auto& thread : clients) thread.join();

  EXPECT_EQ(doomed_status, 504);
  for (std::size_t q = 0; q < n_neighbours; ++q) {
    ASSERT_EQ(statuses[q], 200) << "neighbour " << q;
    EXPECT_EQ(batched_bodies[q], serial_bodies[q])
        << "neighbour " << q << " perturbed by a mid-batch deadline expiry";
  }
  // The expired slot must be recycled cleanly for the next request.
  HttpClient client("127.0.0.1", batched.port());
  const json::Value ok = post_json(client, "/v1/mcq", mcq_body(0), 200);
  EXPECT_EQ(ok.dump(), json::parse(serial_bodies[0]).dump());
}

TEST(Serve, MalformedAndUnknownRequestsAnswerClientErrors) {
  InferenceServer server(shared_world(), quiet_config());
  server.start();
  HttpClient client("127.0.0.1", server.port());

  const std::optional<HttpResponse> missing = client.request("GET", "/nope", "");
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(missing->status, 404);

  const std::optional<HttpResponse> garbage =
      client.request("POST", "/v1/mcq", "{not json", 10.0);
  ASSERT_TRUE(garbage.has_value());
  EXPECT_EQ(garbage->status, 400);

  const std::optional<HttpResponse> out_of_range =
      client.request("POST", "/v1/mcq", mcq_body(10000), 10.0);
  ASSERT_TRUE(out_of_range.has_value());
  EXPECT_EQ(out_of_range->status, 400);

  const std::optional<HttpResponse> no_prompt =
      client.request("POST", "/v1/generate", "{}", 10.0);
  ASSERT_TRUE(no_prompt.has_value());
  EXPECT_EQ(no_prompt->status, 400);

  json::Value swap = json::Value::object();
  swap.set("scale", "S99");
  const std::optional<HttpResponse> bad_scale =
      client.request("POST", "/admin/model", swap.dump(), 10.0);
  ASSERT_TRUE(bad_scale.has_value());
  EXPECT_EQ(bad_scale->status, 400);
}

}  // namespace
}  // namespace astromlab::serve
