// Full-instruct benchmarking pipeline: chat prompting, bounded greedy
// generation and extraction bookkeeping.
#include <gtest/gtest.h>

#include "corpus/corpora.hpp"
#include "eval/full_instruct.hpp"
#include "util/rng.hpp"

namespace astromlab::eval {
namespace {

struct TinyWorld {
  corpus::KnowledgeBase kb;
  corpus::McqSplit mcqs;
  tokenizer::BpeTokenizer tok;
};

TinyWorld make_world() {
  TinyWorld world;
  corpus::KbConfig kb_config;
  kb_config.n_topics = 4;
  kb_config.entities_per_topic = 3;
  kb_config.facts_per_entity = 2;
  kb_config.seed = 61;
  world.kb = corpus::KnowledgeBase::generate(kb_config);
  corpus::McqGenConfig mcq_config;
  mcq_config.questions_per_topic = 2;
  mcq_config.seed = 62;
  world.mcqs = corpus::generate_mcqs(world.kb, mcq_config);
  tokenizer::BpeTrainConfig tok_config;
  tok_config.vocab_size = 420;
  world.tok = tokenizer::BpeTokenizer::train(
      corpus::build_tokenizer_training_text(world.kb, world.mcqs.practice, 63), tok_config);
  return world;
}

nn::GptModel make_model(const TinyWorld& world) {
  nn::GptConfig config;
  config.vocab_size = world.tok.vocab_size();
  config.ctx_len = 384;
  config.d_model = 24;
  config.n_heads = 2;
  config.n_layers = 1;
  config.d_ff = 48;
  nn::GptModel model(config);
  util::Rng rng(64);
  model.init_weights(rng);
  return model;
}

TEST(FullInstructOne, RecordsOutcomeFields) {
  const TinyWorld world = make_world();
  const nn::GptModel model = make_model(world);
  FullInstructConfig config;
  config.max_new_tokens = 24;
  const corpus::McqItem& item = world.mcqs.benchmark.front();
  const FullInstructOutcome outcome = full_instruct_one(model, world.tok, item, config);
  EXPECT_EQ(outcome.result.correct, static_cast<int>(item.correct));
  EXPECT_EQ(outcome.result.tier, item.tier);
  EXPECT_GE(outcome.result.predicted, -1);
  EXPECT_LE(outcome.result.predicted, 3);
  if (outcome.result.predicted < 0) {
    EXPECT_EQ(outcome.result.method, ExtractionMethod::kFailed);
  } else {
    EXPECT_NE(outcome.result.method, ExtractionMethod::kFailed);
  }
}

TEST(FullInstructOne, GreedyIsDeterministic) {
  const TinyWorld world = make_world();
  const nn::GptModel model = make_model(world);
  FullInstructConfig config;
  config.max_new_tokens = 24;
  const corpus::McqItem& item = world.mcqs.benchmark.front();
  const FullInstructOutcome a = full_instruct_one(model, world.tok, item, config);
  const FullInstructOutcome b = full_instruct_one(model, world.tok, item, config);
  EXPECT_EQ(a.raw_output, b.raw_output);
  EXPECT_EQ(a.result.predicted, b.result.predicted);
}

TEST(FullInstructOne, GenerationStopsAtTokenBudget) {
  const TinyWorld world = make_world();
  const nn::GptModel model = make_model(world);
  FullInstructConfig config;
  config.max_new_tokens = 8;
  const FullInstructOutcome outcome =
      full_instruct_one(model, world.tok, world.mcqs.benchmark.front(), config);
  // Decoded text of <= 8 tokens is small (each token is a short string).
  EXPECT_LT(outcome.raw_output.size(), 200u);
}

TEST(RunFullInstruct, CoversEveryQuestion) {
  const TinyWorld world = make_world();
  const nn::GptModel model = make_model(world);
  FullInstructConfig config;
  config.max_new_tokens = 16;
  const auto results =
      run_full_instruct_benchmark(model, world.tok, world.mcqs.benchmark, config);
  ASSERT_EQ(results.size(), world.mcqs.benchmark.size());
  for (std::size_t q = 0; q < results.size(); ++q) {
    EXPECT_EQ(results[q].correct, static_cast<int>(world.mcqs.benchmark[q].correct));
  }
}

TEST(FullInstructOne, RespectsStopToken) {
  // If the model's first greedy token happens to be <|end|>, generation is
  // empty; either way the decoded output never contains the end marker.
  const TinyWorld world = make_world();
  const nn::GptModel model = make_model(world);
  FullInstructConfig config;
  config.max_new_tokens = 32;
  const FullInstructOutcome outcome =
      full_instruct_one(model, world.tok, world.mcqs.benchmark[1], config);
  EXPECT_EQ(outcome.raw_output.find("<|end|>"), std::string::npos);
}

}  // namespace
}  // namespace astromlab::eval
