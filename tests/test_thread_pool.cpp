#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

namespace astromlab::util {
namespace {

TEST(ThreadPool, SubmitRunsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ZeroWorkerPoolRunsInline) {
  // Explicitly-sized zero pools (1-core hosts) execute inline.
  ThreadPool pool(0);
  if (pool.worker_count() == 0) {
    int value = 0;
    pool.submit([&value] { value = 42; });
    EXPECT_EQ(value, 42);
  }
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(
      1000,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
      },
      16);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSmallRangeStaysSerial) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(
      3,
      [&](std::size_t begin, std::size_t end) {
        ++calls;
        EXPECT_LE(end - begin, 3u);
      },
      100);  // grain larger than range -> single chunk
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, ParallelForSumsCorrectly) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 100000;
  std::atomic<long long> total{0};
  pool.parallel_for(
      kN,
      [&](std::size_t begin, std::size_t end) {
        long long local = 0;
        for (std::size_t i = begin; i < end; ++i) local += static_cast<long long>(i);
        total.fetch_add(local, std::memory_order_relaxed);
      },
      64);
  EXPECT_EQ(total.load(), static_cast<long long>(kN) * (kN - 1) / 2);
}

TEST(GlobalHelpers, ParallelForEachVisitsEveryIndex) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for_each(257, [&](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(GlobalHelpers, RangeFormMatchesElementForm) {
  std::vector<int> a(500, 0), b(500, 0);
  parallel_for_each(500, [&](std::size_t i) { a[i] = static_cast<int>(i) * 2; });
  parallel_for_range(500, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) b[i] = static_cast<int>(i) * 2;
  });
  EXPECT_EQ(a, b);
}

TEST(ThreadPool, ThrowingTaskSurfacesFromWaitIdleWithoutTerminating) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&ran, i] {
      ran.fetch_add(1, std::memory_order_relaxed);
      if (i == 7) throw std::runtime_error("task 7 exploded");
    });
  }
  // The throwing task must not escape a worker thread (std::terminate) nor
  // leak the in-flight count (deadlocked wait_idle); the first error is
  // rethrown here instead.
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(ran.load(), 20);

  // The error slot was consumed: the pool stays usable afterwards.
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, ZeroWorkerPoolPropagatesFromWaitIdleToo) {
  ThreadPool pool(0);
  if (pool.worker_count() != 0) GTEST_SKIP() << "host forced worker threads";
  pool.submit([] { throw std::logic_error("inline failure"); });
  EXPECT_THROW(pool.wait_idle(), std::logic_error);
}

TEST(ThreadPool, ParallelForPropagatesBodyExceptionWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> chunks{0};
  EXPECT_THROW(pool.parallel_for(
                   1000,
                   [&](std::size_t begin, std::size_t) {
                     chunks.fetch_add(1, std::memory_order_relaxed);
                     if (begin == 0) throw std::runtime_error("chunk failed");
                   },
                   16),
               std::runtime_error);
  // And the pool still works for the next wave.
  std::atomic<int> counter{0};
  pool.parallel_for(64, [&](std::size_t begin, std::size_t end) {
    counter.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, ReusableAcrossWaves) {
  ThreadPool pool(2);
  for (int wave = 0; wave < 5; ++wave) {
    std::atomic<int> counter{0};
    pool.parallel_for(64, [&](std::size_t begin, std::size_t end) {
      counter.fetch_add(static_cast<int>(end - begin));
    });
    EXPECT_EQ(counter.load(), 64);
  }
}

}  // namespace
}  // namespace astromlab::util
