// The three-stage answer-extraction pipeline of the full-instruct method:
// JSON parse, regex rescue, and the GPT-4o-analog interpreter fallback.
#include <gtest/gtest.h>

#include "eval/answer_extract.hpp"

namespace astromlab::eval {
namespace {

const std::array<std::string, 4> kOptions = {
    "1.0 to 1.5 solar masses", "2.0 to 2.5 solar masses",
    "3.0 to 3.5 solar masses", "0.5 to 1.0 solar masses"};

struct ExtractCase {
  const char* name;
  const char* output;
  int expected_letter;  // -1 = extraction should fail
  ExtractionMethod expected_method;
};

class ExtractTest : public ::testing::TestWithParam<ExtractCase> {};

TEST_P(ExtractTest, ExtractsExpectedLetterViaExpectedMethod) {
  const ExtractCase& c = GetParam();
  const ExtractedAnswer answer = extract_answer(c.output, kOptions);
  if (c.expected_letter < 0) {
    EXPECT_FALSE(answer.letter.has_value()) << c.name;
  } else {
    ASSERT_TRUE(answer.letter.has_value()) << c.name;
    EXPECT_EQ(*answer.letter, c.expected_letter) << c.name;
  }
  EXPECT_EQ(answer.method, c.expected_method) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Pipeline, ExtractTest,
    ::testing::Values(
        // --- Stage 1: strict JSON ---
        ExtractCase{"clean_json",
                    R"({"ANSWER": "B", "EXPLANATION": "because"})", 1,
                    ExtractionMethod::kJson},
        ExtractCase{"json_with_preamble",
                    R"(Sure! Here is my answer: {"ANSWER": "C", "EXPLANATION": "x"})", 2,
                    ExtractionMethod::kJson},
        ExtractCase{"json_lowercase_key", R"({"answer": "d"})", 3, ExtractionMethod::kJson},
        ExtractCase{"json_letter_with_text", R"({"ANSWER": "A: 1.0 to 1.5 solar masses"})",
                    0, ExtractionMethod::kJson},
        ExtractCase{"json_trailing_garbage",
                    R"({"ANSWER": "B"} and then it kept talking...)", 1,
                    ExtractionMethod::kJson},
        // --- Stage 2: regex over malformed JSON ---
        ExtractCase{"unterminated_json", R"({"ANSWER": "B", "EXPLANATION": "runs off)", 1,
                    ExtractionMethod::kRegex},
        ExtractCase{"missing_quotes", R"({ANSWER: C, EXPLANATION: none})", 2,
                    ExtractionMethod::kRegex},
        ExtractCase{"answer_equals", R"(ANSWER = "D")", 3, ExtractionMethod::kRegex},
        // --- Stage 3: interpreter fallback ---
        ExtractCase{"prose_answer_is", "I believe the answer is C because of the disk.", 2,
                    ExtractionMethod::kInterpreter},
        ExtractCase{"prose_correct_option", "The correct option is (B).", 1,
                    ExtractionMethod::kInterpreter},
        // "Answer: D" is already caught by the (case-insensitive) regex
        // stage, before the interpreter ever runs.
        ExtractCase{"prose_answer_colon", "Answer: D", 3, ExtractionMethod::kRegex},
        ExtractCase{"verbatim_option",
                    "Based on the population it must be 2.0 to 2.5 solar masses.", 1,
                    ExtractionMethod::kInterpreter},
        ExtractCase{"lone_letter", "Definitely \"A\".", 0, ExtractionMethod::kInterpreter},
        // --- Regression: a word that merely STARTS with A-D is not an
        // answer. "Definitely unsure" used to parse as D through both the
        // JSON stage (first-letter scan) and the regex rescue. ---
        ExtractCase{"json_word_is_not_a_letter", R"({"ANSWER": "Definitely unsure"})", -1,
                    ExtractionMethod::kFailed},
        ExtractCase{"regex_word_is_not_a_letter", R"({ANSWER: Definitely unsure})", -1,
                    ExtractionMethod::kFailed},
        ExtractCase{"json_all_of_the_above", R"({"ANSWER": "All of the above"})", -1,
                    ExtractionMethod::kFailed},
        // The word-boundary rule must keep accepting the legitimate forms.
        ExtractCase{"json_letter_dot", R"({"ANSWER": "B."})", 1, ExtractionMethod::kJson},
        ExtractCase{"json_letter_colon_option_text",
                    R"({"ANSWER": "B: 2.0 to 2.5 solar masses"})", 1,
                    ExtractionMethod::kJson},
        // --- Failure ---
        ExtractCase{"nothing_extractable", "I am not sure about this question at all.", -1,
                    ExtractionMethod::kFailed},
        ExtractCase{"empty_output", "", -1, ExtractionMethod::kFailed}));

TEST(Extract, JsonTakesPriorityOverProse) {
  // Both a JSON answer and a contradicting prose answer: JSON wins.
  const auto answer =
      extract_answer(R"(The answer is A. {"ANSWER": "D"})", kOptions);
  ASSERT_TRUE(answer.letter.has_value());
  EXPECT_EQ(*answer.letter, 3);
  EXPECT_EQ(answer.method, ExtractionMethod::kJson);
}

TEST(Extract, AmbiguousOptionMatchDoesNotGuess) {
  // Two different options restated verbatim -> interpreter must not pick.
  const std::string output = "It is either 1.0 to 1.5 solar masses or "
                             "2.0 to 2.5 solar masses, hard to say.";
  const auto answer = extract_answer(output, kOptions);
  EXPECT_FALSE(answer.letter.has_value());
}

TEST(Extract, JsonWithNonStringAnswerFallsThrough) {
  const auto answer = extract_answer(R"({"ANSWER": 2})", kOptions);
  // Strict JSON rejects; regex finds no letter after ANSWER; interpreter
  // has nothing to work with.
  EXPECT_FALSE(answer.letter.has_value());
}

TEST(Extract, MethodNamesAreStable) {
  EXPECT_STREQ(extraction_method_name(ExtractionMethod::kJson), "json");
  EXPECT_STREQ(extraction_method_name(ExtractionMethod::kRegex), "regex");
  EXPECT_STREQ(extraction_method_name(ExtractionMethod::kInterpreter), "interpreter");
  EXPECT_STREQ(extraction_method_name(ExtractionMethod::kFailed), "failed");
}

}  // namespace
}  // namespace astromlab::eval
