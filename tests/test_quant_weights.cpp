// Quantised-weight inference: the dequant-fused decode path must honour
// the bit-exactness contracts quant.hpp states at the model level.
//   * bf16: `quantize_weights(kBf16)` logits are bitwise identical to fp32
//     inference over a model whose every parameter was bf16-rounded —
//     quantising cannot change an MCQ answer relative to a bf16
//     checkpoint roundtrip.
//   * int8: fused logits are bitwise identical to fp32 inference over a
//     model whose five decode matrices were dequantised from the same
//     int8 payload (dequant-then-gemv oracle).
//   * batched == serial bitwise for every dtype, so continuous batching
//     and the serve path cannot drift from the offline supervisor.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <random>
#include <stdexcept>
#include <vector>

#include "nn/gpt.hpp"
#include "tensor/bf16.hpp"
#include "tensor/quant.hpp"
#include "util/rng.hpp"

namespace astromlab {
namespace {

nn::GptModel tiny_model() {
  nn::GptConfig config;
  config.vocab_size = 96;
  config.ctx_len = 96;
  config.d_model = 16;
  config.n_heads = 2;
  config.n_layers = 2;
  config.d_ff = 32;
  nn::GptModel model(config);
  util::Rng rng(91);
  model.init_weights(rng);
  return model;
}

std::vector<nn::Token> fixed_prompt(std::size_t len, std::size_t vocab) {
  std::mt19937_64 rng(4242);
  std::uniform_int_distribution<nn::Token> pick(0, static_cast<nn::Token>(vocab - 1));
  std::vector<nn::Token> prompt(len);
  for (auto& t : prompt) t = pick(rng);
  return prompt;
}

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

nn::Token argmax_token(const std::vector<float>& logits) {
  return static_cast<nn::Token>(std::max_element(logits.begin(), logits.end()) -
                                logits.begin());
}

/// Runs the same token stream through both inferences, asserting bitwise
/// logits equality at every step; greedy continuation after the prompt so
/// the compared positions depend on earlier compared positions.
void assert_decode_bitwise(nn::GptInference& got, nn::GptInference& want,
                           const std::vector<nn::Token>& prompt, std::size_t decode_steps) {
  const std::vector<float>* g = nullptr;
  const std::vector<float>* w = nullptr;
  for (const nn::Token t : prompt) {
    g = &got.step(t);
    w = &want.step(t);
    ASSERT_TRUE(bitwise_equal(*g, *w)) << "prompt divergence at " << got.position();
  }
  for (std::size_t i = 0; i < decode_steps; ++i) {
    const nn::Token next = argmax_token(*w);
    g = &got.step(next);
    w = &want.step(next);
    ASSERT_TRUE(bitwise_equal(*g, *w)) << "decode divergence at " << got.position();
  }
}

TEST(QuantWeights, Bf16FusedMatchesRoundedFp32Bitwise) {
  nn::GptModel fused = tiny_model();
  fused.quantize_weights(tensor::WeightDtype::kBf16);
  ASSERT_EQ(fused.weight_dtype(), tensor::WeightDtype::kBf16);
  ASSERT_NE(fused.quant(fused.layout().wte), nullptr);

  // Oracle: identical init, every parameter rounded through bf16, plain
  // fp32 compute. bf16 -> fp32 widening is exact, so the fused kernels
  // must reproduce this bitwise.
  nn::GptModel oracle = tiny_model();
  float* p = oracle.params().params();
  const std::size_t n = oracle.params().total_size();
  for (std::size_t i = 0; i < n; ++i) p[i] = tensor::bf16_round(p[i]);

  nn::GptInference a(fused);
  nn::GptInference b(oracle);
  assert_decode_bitwise(a, b, fixed_prompt(24, fused.config().vocab_size), 16);
}

TEST(QuantWeights, Int8FusedMatchesDequantOracleBitwise) {
  nn::GptModel fused = tiny_model();
  fused.quantize_weights(tensor::WeightDtype::kInt8);
  ASSERT_EQ(fused.weight_dtype(), tensor::WeightDtype::kInt8);

  // Oracle: same weights, but the five decode matrices replaced by the
  // dequantised expansion of the fused model's own int8 payload, run
  // through plain fp32 compute.
  nn::GptModel oracle = tiny_model();
  const auto expand = [&](std::size_t segment) {
    const tensor::QuantMatrix* qm = fused.quant(segment);
    ASSERT_NE(qm, nullptr) << "segment " << segment << " not quantised";
    ASSERT_EQ(qm->dtype, tensor::WeightDtype::kInt8);
    tensor::dequantize(*qm, oracle.params().param(segment));
  };
  const nn::GptModel::Layout& layout = oracle.layout();
  expand(layout.wte);
  for (const auto& blk : layout.blocks) {
    expand(blk.qkv_w);
    expand(blk.attn_proj_w);
    expand(blk.fc_w);
    expand(blk.fc_proj_w);
  }
  // wte is tied: it is both the LM-head matrix (int8 payload in the fused
  // model) and the token-embedding table (fp32 master lookup in both).
  // The bit-identity contract covers the gemv, not the embedding, so align
  // the lookups by giving the fused model the same dequantised embedding
  // rows the oracle got above. Its LM head still runs the int8 kernels.
  tensor::dequantize(*fused.quant(layout.wte), fused.params().param(layout.wte));

  nn::GptInference a(fused);
  nn::GptInference b(oracle);
  assert_decode_bitwise(a, b, fixed_prompt(24, fused.config().vocab_size), 16);
}

TEST(QuantWeights, Int8PayloadSavesMemoryAndBoundsError) {
  nn::GptModel model = tiny_model();
  model.quantize_weights(tensor::WeightDtype::kInt8);
  const nn::GptModel::Layout& layout = model.layout();
  const tensor::QuantMatrix* qm = model.quant(layout.wte);
  ASSERT_NE(qm, nullptr);
  const std::size_t fp32_bytes = qm->rows * qm->cols * sizeof(float);
  EXPECT_LT(qm->bytes(), fp32_bytes / 3);  // int8 + per-row scale < fp32/3

  // Per-row absmax quantisation bounds the per-element error by half a
  // quantisation step: |w - dq(w)| <= scale/2 = max|row| / 254.
  std::vector<float> row(qm->cols);
  const float* master = model.params().param(layout.wte);
  for (std::size_t r = 0; r < qm->rows; ++r) {
    tensor::dequantize_row(*qm, r, row.data());
    float amax = 0.0f;
    for (std::size_t c = 0; c < qm->cols; ++c) {
      amax = std::max(amax, std::abs(master[r * qm->cols + c]));
    }
    const float bound = amax / 254.0f + 1e-12f;
    for (std::size_t c = 0; c < qm->cols; ++c) {
      ASSERT_LE(std::abs(row[c] - master[r * qm->cols + c]), bound)
          << "row " << r << " col " << c;
    }
  }
}

TEST(QuantWeights, BatchedMatchesSerialForEveryDtype) {
  for (const tensor::WeightDtype dtype :
       {tensor::WeightDtype::kF32, tensor::WeightDtype::kBf16, tensor::WeightDtype::kInt8}) {
    nn::GptModel model = tiny_model();
    model.quantize_weights(dtype);
    const std::vector<nn::Token> prompt = fixed_prompt(12, model.config().vocab_size);

    nn::BatchedInference batch(model, 3);
    // Stagger three slots so the batch is ragged: slot s skips the first s
    // prompt tokens, giving every slot a different position.
    std::vector<nn::GptInference> oracles;
    oracles.reserve(3);
    for (std::size_t s = 0; s < 3; ++s) oracles.emplace_back(model);
    for (std::size_t s = 0; s < 3; ++s) {
      for (std::size_t i = s; i < prompt.size(); ++i) {
        const std::size_t slot = s;
        batch.step(&slot, &prompt[i], 1);
        const std::vector<float>& want = oracles[s].step(prompt[i]);
        ASSERT_TRUE(bitwise_equal(batch.logits(s), want))
            << "dtype " << tensor::weight_dtype_name(dtype) << " slot " << s;
      }
    }
    // Joint greedy decode: all three slots advance in one shared pass.
    for (std::size_t round = 0; round < 8; ++round) {
      std::size_t slots[3];
      nn::Token toks[3];
      for (std::size_t s = 0; s < 3; ++s) {
        slots[s] = s;
        toks[s] = argmax_token(batch.logits(s));
      }
      batch.step(slots, toks, 3);
      for (std::size_t s = 0; s < 3; ++s) {
        const std::vector<float>& want = oracles[s].step(toks[s]);
        ASSERT_TRUE(bitwise_equal(batch.logits(s), want))
            << "dtype " << tensor::weight_dtype_name(dtype) << " slot " << s
            << " round " << round;
      }
    }
  }
}

TEST(QuantWeights, RequantizeToF32RestoresPlainCompute) {
  nn::GptModel model = tiny_model();
  nn::GptInference before(model);
  const std::vector<nn::Token> prompt = fixed_prompt(10, model.config().vocab_size);
  std::vector<float> baseline;
  for (const nn::Token t : prompt) baseline = before.step(t);

  // int8 leaves the fp32 masters untouched, so dropping the quantised
  // storage restores the exact original logits.
  model.quantize_weights(tensor::WeightDtype::kInt8);
  model.quantize_weights(tensor::WeightDtype::kF32);
  EXPECT_EQ(model.weight_dtype(), tensor::WeightDtype::kF32);
  EXPECT_EQ(model.quant(model.layout().wte), nullptr);
  nn::GptInference after(model);
  std::vector<float> restored;
  for (const nn::Token t : prompt) restored = after.step(t);
  ASSERT_TRUE(bitwise_equal(baseline, restored));
}

TEST(QuantWeights, ParseWeightDtypeRoundTripsAndRejectsTypos) {
  EXPECT_EQ(tensor::parse_weight_dtype("fp32"), tensor::WeightDtype::kF32);
  EXPECT_EQ(tensor::parse_weight_dtype("bf16"), tensor::WeightDtype::kBf16);
  EXPECT_EQ(tensor::parse_weight_dtype("int8"), tensor::WeightDtype::kInt8);
  for (const tensor::WeightDtype dtype :
       {tensor::WeightDtype::kF32, tensor::WeightDtype::kBf16, tensor::WeightDtype::kInt8}) {
    EXPECT_EQ(tensor::parse_weight_dtype(tensor::weight_dtype_name(dtype)), dtype);
  }
  EXPECT_THROW(tensor::parse_weight_dtype("fp16"), std::invalid_argument);
  EXPECT_THROW(tensor::parse_weight_dtype("int4"), std::invalid_argument);
  EXPECT_THROW(tensor::parse_weight_dtype(""), std::invalid_argument);
}

}  // namespace
}  // namespace astromlab
