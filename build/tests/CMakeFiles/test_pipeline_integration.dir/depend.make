# Empty dependencies file for test_pipeline_integration.
# This may be replaced when dependencies are built.
