file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_integration.dir/test_pipeline_integration.cpp.o"
  "CMakeFiles/test_pipeline_integration.dir/test_pipeline_integration.cpp.o.d"
  "test_pipeline_integration"
  "test_pipeline_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
