# Empty dependencies file for test_mcq.
# This may be replaced when dependencies are built.
