file(REMOVE_RECURSE
  "CMakeFiles/test_mcq.dir/test_mcq.cpp.o"
  "CMakeFiles/test_mcq.dir/test_mcq.cpp.o.d"
  "test_mcq"
  "test_mcq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mcq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
