file(REMOVE_RECURSE
  "CMakeFiles/test_answer_extract.dir/test_answer_extract.cpp.o"
  "CMakeFiles/test_answer_extract.dir/test_answer_extract.cpp.o.d"
  "test_answer_extract"
  "test_answer_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_answer_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
