# Empty compiler generated dependencies file for test_answer_extract.
# This may be replaced when dependencies are built.
