# Empty dependencies file for test_paper_generator.
# This may be replaced when dependencies are built.
