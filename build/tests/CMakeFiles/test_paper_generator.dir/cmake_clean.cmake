file(REMOVE_RECURSE
  "CMakeFiles/test_paper_generator.dir/test_paper_generator.cpp.o"
  "CMakeFiles/test_paper_generator.dir/test_paper_generator.cpp.o.d"
  "test_paper_generator"
  "test_paper_generator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
