# Empty dependencies file for test_hash_io.
# This may be replaced when dependencies are built.
