file(REMOVE_RECURSE
  "CMakeFiles/test_hash_io.dir/test_hash_io.cpp.o"
  "CMakeFiles/test_hash_io.dir/test_hash_io.cpp.o.d"
  "test_hash_io"
  "test_hash_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hash_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
