# Empty dependencies file for test_token_method.
# This may be replaced when dependencies are built.
