file(REMOVE_RECURSE
  "CMakeFiles/test_token_method.dir/test_token_method.cpp.o"
  "CMakeFiles/test_token_method.dir/test_token_method.cpp.o.d"
  "test_token_method"
  "test_token_method.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_token_method.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
