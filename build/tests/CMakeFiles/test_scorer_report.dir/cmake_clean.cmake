file(REMOVE_RECURSE
  "CMakeFiles/test_scorer_report.dir/test_scorer_report.cpp.o"
  "CMakeFiles/test_scorer_report.dir/test_scorer_report.cpp.o.d"
  "test_scorer_report"
  "test_scorer_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scorer_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
