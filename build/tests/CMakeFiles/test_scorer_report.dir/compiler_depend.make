# Empty compiler generated dependencies file for test_scorer_report.
# This may be replaced when dependencies are built.
