file(REMOVE_RECURSE
  "CMakeFiles/test_nn_forward.dir/test_nn_forward.cpp.o"
  "CMakeFiles/test_nn_forward.dir/test_nn_forward.cpp.o.d"
  "test_nn_forward"
  "test_nn_forward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_forward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
