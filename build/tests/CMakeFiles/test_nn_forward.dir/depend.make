# Empty dependencies file for test_nn_forward.
# This may be replaced when dependencies are built.
