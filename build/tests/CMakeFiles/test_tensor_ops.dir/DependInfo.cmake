
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_tensor_ops.cpp" "tests/CMakeFiles/test_tensor_ops.dir/test_tensor_ops.cpp.o" "gcc" "tests/CMakeFiles/test_tensor_ops.dir/test_tensor_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/astromlab_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/astromlab_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/astromlab_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/astromlab_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tokenizer/CMakeFiles/astromlab_tokenizer.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/astromlab_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/astromlab_json.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/astromlab_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
