# Empty dependencies file for test_prompts.
# This may be replaced when dependencies are built.
