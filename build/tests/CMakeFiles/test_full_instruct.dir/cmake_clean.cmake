file(REMOVE_RECURSE
  "CMakeFiles/test_full_instruct.dir/test_full_instruct.cpp.o"
  "CMakeFiles/test_full_instruct.dir/test_full_instruct.cpp.o.d"
  "test_full_instruct"
  "test_full_instruct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_full_instruct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
