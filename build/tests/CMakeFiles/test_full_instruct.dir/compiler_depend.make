# Empty compiler generated dependencies file for test_full_instruct.
# This may be replaced when dependencies are built.
