file(REMOVE_RECURSE
  "CMakeFiles/test_sft.dir/test_sft.cpp.o"
  "CMakeFiles/test_sft.dir/test_sft.cpp.o.d"
  "test_sft"
  "test_sft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
