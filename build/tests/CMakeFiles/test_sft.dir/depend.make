# Empty dependencies file for test_sft.
# This may be replaced when dependencies are built.
