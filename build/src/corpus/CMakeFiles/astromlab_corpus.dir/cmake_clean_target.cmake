file(REMOVE_RECURSE
  "libastromlab_corpus.a"
)
