file(REMOVE_RECURSE
  "CMakeFiles/astromlab_corpus.dir/chat_format.cpp.o"
  "CMakeFiles/astromlab_corpus.dir/chat_format.cpp.o.d"
  "CMakeFiles/astromlab_corpus.dir/corpora.cpp.o"
  "CMakeFiles/astromlab_corpus.dir/corpora.cpp.o.d"
  "CMakeFiles/astromlab_corpus.dir/knowledge.cpp.o"
  "CMakeFiles/astromlab_corpus.dir/knowledge.cpp.o.d"
  "CMakeFiles/astromlab_corpus.dir/lexicon.cpp.o"
  "CMakeFiles/astromlab_corpus.dir/lexicon.cpp.o.d"
  "CMakeFiles/astromlab_corpus.dir/mcq.cpp.o"
  "CMakeFiles/astromlab_corpus.dir/mcq.cpp.o.d"
  "CMakeFiles/astromlab_corpus.dir/paper_generator.cpp.o"
  "CMakeFiles/astromlab_corpus.dir/paper_generator.cpp.o.d"
  "CMakeFiles/astromlab_corpus.dir/sft_dataset.cpp.o"
  "CMakeFiles/astromlab_corpus.dir/sft_dataset.cpp.o.d"
  "libastromlab_corpus.a"
  "libastromlab_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astromlab_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
