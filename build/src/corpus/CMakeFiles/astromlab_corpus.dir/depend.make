# Empty dependencies file for astromlab_corpus.
# This may be replaced when dependencies are built.
