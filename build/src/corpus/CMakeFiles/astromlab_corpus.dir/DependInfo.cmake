
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/chat_format.cpp" "src/corpus/CMakeFiles/astromlab_corpus.dir/chat_format.cpp.o" "gcc" "src/corpus/CMakeFiles/astromlab_corpus.dir/chat_format.cpp.o.d"
  "/root/repo/src/corpus/corpora.cpp" "src/corpus/CMakeFiles/astromlab_corpus.dir/corpora.cpp.o" "gcc" "src/corpus/CMakeFiles/astromlab_corpus.dir/corpora.cpp.o.d"
  "/root/repo/src/corpus/knowledge.cpp" "src/corpus/CMakeFiles/astromlab_corpus.dir/knowledge.cpp.o" "gcc" "src/corpus/CMakeFiles/astromlab_corpus.dir/knowledge.cpp.o.d"
  "/root/repo/src/corpus/lexicon.cpp" "src/corpus/CMakeFiles/astromlab_corpus.dir/lexicon.cpp.o" "gcc" "src/corpus/CMakeFiles/astromlab_corpus.dir/lexicon.cpp.o.d"
  "/root/repo/src/corpus/mcq.cpp" "src/corpus/CMakeFiles/astromlab_corpus.dir/mcq.cpp.o" "gcc" "src/corpus/CMakeFiles/astromlab_corpus.dir/mcq.cpp.o.d"
  "/root/repo/src/corpus/paper_generator.cpp" "src/corpus/CMakeFiles/astromlab_corpus.dir/paper_generator.cpp.o" "gcc" "src/corpus/CMakeFiles/astromlab_corpus.dir/paper_generator.cpp.o.d"
  "/root/repo/src/corpus/sft_dataset.cpp" "src/corpus/CMakeFiles/astromlab_corpus.dir/sft_dataset.cpp.o" "gcc" "src/corpus/CMakeFiles/astromlab_corpus.dir/sft_dataset.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/astromlab_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tokenizer/CMakeFiles/astromlab_tokenizer.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/astromlab_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/astromlab_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
