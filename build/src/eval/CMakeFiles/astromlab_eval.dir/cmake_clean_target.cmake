file(REMOVE_RECURSE
  "libastromlab_eval.a"
)
