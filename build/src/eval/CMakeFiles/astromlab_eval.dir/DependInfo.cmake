
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/answer_extract.cpp" "src/eval/CMakeFiles/astromlab_eval.dir/answer_extract.cpp.o" "gcc" "src/eval/CMakeFiles/astromlab_eval.dir/answer_extract.cpp.o.d"
  "/root/repo/src/eval/full_instruct.cpp" "src/eval/CMakeFiles/astromlab_eval.dir/full_instruct.cpp.o" "gcc" "src/eval/CMakeFiles/astromlab_eval.dir/full_instruct.cpp.o.d"
  "/root/repo/src/eval/prompts.cpp" "src/eval/CMakeFiles/astromlab_eval.dir/prompts.cpp.o" "gcc" "src/eval/CMakeFiles/astromlab_eval.dir/prompts.cpp.o.d"
  "/root/repo/src/eval/report.cpp" "src/eval/CMakeFiles/astromlab_eval.dir/report.cpp.o" "gcc" "src/eval/CMakeFiles/astromlab_eval.dir/report.cpp.o.d"
  "/root/repo/src/eval/scorer.cpp" "src/eval/CMakeFiles/astromlab_eval.dir/scorer.cpp.o" "gcc" "src/eval/CMakeFiles/astromlab_eval.dir/scorer.cpp.o.d"
  "/root/repo/src/eval/token_method.cpp" "src/eval/CMakeFiles/astromlab_eval.dir/token_method.cpp.o" "gcc" "src/eval/CMakeFiles/astromlab_eval.dir/token_method.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/corpus/CMakeFiles/astromlab_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/astromlab_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/astromlab_json.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/astromlab_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/astromlab_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/tokenizer/CMakeFiles/astromlab_tokenizer.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
