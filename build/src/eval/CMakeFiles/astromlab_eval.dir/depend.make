# Empty dependencies file for astromlab_eval.
# This may be replaced when dependencies are built.
