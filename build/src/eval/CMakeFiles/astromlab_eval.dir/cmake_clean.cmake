file(REMOVE_RECURSE
  "CMakeFiles/astromlab_eval.dir/answer_extract.cpp.o"
  "CMakeFiles/astromlab_eval.dir/answer_extract.cpp.o.d"
  "CMakeFiles/astromlab_eval.dir/full_instruct.cpp.o"
  "CMakeFiles/astromlab_eval.dir/full_instruct.cpp.o.d"
  "CMakeFiles/astromlab_eval.dir/prompts.cpp.o"
  "CMakeFiles/astromlab_eval.dir/prompts.cpp.o.d"
  "CMakeFiles/astromlab_eval.dir/report.cpp.o"
  "CMakeFiles/astromlab_eval.dir/report.cpp.o.d"
  "CMakeFiles/astromlab_eval.dir/scorer.cpp.o"
  "CMakeFiles/astromlab_eval.dir/scorer.cpp.o.d"
  "CMakeFiles/astromlab_eval.dir/token_method.cpp.o"
  "CMakeFiles/astromlab_eval.dir/token_method.cpp.o.d"
  "libastromlab_eval.a"
  "libastromlab_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astromlab_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
