file(REMOVE_RECURSE
  "libastromlab_tokenizer.a"
)
