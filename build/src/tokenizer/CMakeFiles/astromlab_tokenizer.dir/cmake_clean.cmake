file(REMOVE_RECURSE
  "CMakeFiles/astromlab_tokenizer.dir/bpe.cpp.o"
  "CMakeFiles/astromlab_tokenizer.dir/bpe.cpp.o.d"
  "libastromlab_tokenizer.a"
  "libastromlab_tokenizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astromlab_tokenizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
