# Empty dependencies file for astromlab_tokenizer.
# This may be replaced when dependencies are built.
