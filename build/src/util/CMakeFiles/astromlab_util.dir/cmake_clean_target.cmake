file(REMOVE_RECURSE
  "libastromlab_util.a"
)
