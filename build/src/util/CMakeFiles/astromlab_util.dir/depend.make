# Empty dependencies file for astromlab_util.
# This may be replaced when dependencies are built.
