file(REMOVE_RECURSE
  "CMakeFiles/astromlab_util.dir/cli.cpp.o"
  "CMakeFiles/astromlab_util.dir/cli.cpp.o.d"
  "CMakeFiles/astromlab_util.dir/io.cpp.o"
  "CMakeFiles/astromlab_util.dir/io.cpp.o.d"
  "CMakeFiles/astromlab_util.dir/logging.cpp.o"
  "CMakeFiles/astromlab_util.dir/logging.cpp.o.d"
  "CMakeFiles/astromlab_util.dir/rng.cpp.o"
  "CMakeFiles/astromlab_util.dir/rng.cpp.o.d"
  "CMakeFiles/astromlab_util.dir/string_utils.cpp.o"
  "CMakeFiles/astromlab_util.dir/string_utils.cpp.o.d"
  "CMakeFiles/astromlab_util.dir/thread_pool.cpp.o"
  "CMakeFiles/astromlab_util.dir/thread_pool.cpp.o.d"
  "libastromlab_util.a"
  "libastromlab_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astromlab_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
