file(REMOVE_RECURSE
  "CMakeFiles/astromlab_nn.dir/adamw.cpp.o"
  "CMakeFiles/astromlab_nn.dir/adamw.cpp.o.d"
  "CMakeFiles/astromlab_nn.dir/checkpoint.cpp.o"
  "CMakeFiles/astromlab_nn.dir/checkpoint.cpp.o.d"
  "CMakeFiles/astromlab_nn.dir/data.cpp.o"
  "CMakeFiles/astromlab_nn.dir/data.cpp.o.d"
  "CMakeFiles/astromlab_nn.dir/gpt.cpp.o"
  "CMakeFiles/astromlab_nn.dir/gpt.cpp.o.d"
  "CMakeFiles/astromlab_nn.dir/lr_schedule.cpp.o"
  "CMakeFiles/astromlab_nn.dir/lr_schedule.cpp.o.d"
  "CMakeFiles/astromlab_nn.dir/params.cpp.o"
  "CMakeFiles/astromlab_nn.dir/params.cpp.o.d"
  "CMakeFiles/astromlab_nn.dir/sampler.cpp.o"
  "CMakeFiles/astromlab_nn.dir/sampler.cpp.o.d"
  "CMakeFiles/astromlab_nn.dir/trainer.cpp.o"
  "CMakeFiles/astromlab_nn.dir/trainer.cpp.o.d"
  "libastromlab_nn.a"
  "libastromlab_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astromlab_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
