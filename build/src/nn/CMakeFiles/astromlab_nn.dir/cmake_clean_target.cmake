file(REMOVE_RECURSE
  "libastromlab_nn.a"
)
