
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/adamw.cpp" "src/nn/CMakeFiles/astromlab_nn.dir/adamw.cpp.o" "gcc" "src/nn/CMakeFiles/astromlab_nn.dir/adamw.cpp.o.d"
  "/root/repo/src/nn/checkpoint.cpp" "src/nn/CMakeFiles/astromlab_nn.dir/checkpoint.cpp.o" "gcc" "src/nn/CMakeFiles/astromlab_nn.dir/checkpoint.cpp.o.d"
  "/root/repo/src/nn/data.cpp" "src/nn/CMakeFiles/astromlab_nn.dir/data.cpp.o" "gcc" "src/nn/CMakeFiles/astromlab_nn.dir/data.cpp.o.d"
  "/root/repo/src/nn/gpt.cpp" "src/nn/CMakeFiles/astromlab_nn.dir/gpt.cpp.o" "gcc" "src/nn/CMakeFiles/astromlab_nn.dir/gpt.cpp.o.d"
  "/root/repo/src/nn/lr_schedule.cpp" "src/nn/CMakeFiles/astromlab_nn.dir/lr_schedule.cpp.o" "gcc" "src/nn/CMakeFiles/astromlab_nn.dir/lr_schedule.cpp.o.d"
  "/root/repo/src/nn/params.cpp" "src/nn/CMakeFiles/astromlab_nn.dir/params.cpp.o" "gcc" "src/nn/CMakeFiles/astromlab_nn.dir/params.cpp.o.d"
  "/root/repo/src/nn/sampler.cpp" "src/nn/CMakeFiles/astromlab_nn.dir/sampler.cpp.o" "gcc" "src/nn/CMakeFiles/astromlab_nn.dir/sampler.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/nn/CMakeFiles/astromlab_nn.dir/trainer.cpp.o" "gcc" "src/nn/CMakeFiles/astromlab_nn.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/astromlab_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/tokenizer/CMakeFiles/astromlab_tokenizer.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/astromlab_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
