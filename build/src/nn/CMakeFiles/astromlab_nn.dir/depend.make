# Empty dependencies file for astromlab_nn.
# This may be replaced when dependencies are built.
