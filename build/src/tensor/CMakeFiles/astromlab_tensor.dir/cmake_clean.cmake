file(REMOVE_RECURSE
  "CMakeFiles/astromlab_tensor.dir/ops.cpp.o"
  "CMakeFiles/astromlab_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/astromlab_tensor.dir/tensor.cpp.o"
  "CMakeFiles/astromlab_tensor.dir/tensor.cpp.o.d"
  "libastromlab_tensor.a"
  "libastromlab_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astromlab_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
