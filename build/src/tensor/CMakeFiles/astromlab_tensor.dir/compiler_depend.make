# Empty compiler generated dependencies file for astromlab_tensor.
# This may be replaced when dependencies are built.
