file(REMOVE_RECURSE
  "libastromlab_tensor.a"
)
