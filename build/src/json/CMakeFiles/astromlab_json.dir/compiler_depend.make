# Empty compiler generated dependencies file for astromlab_json.
# This may be replaced when dependencies are built.
