file(REMOVE_RECURSE
  "libastromlab_json.a"
)
