file(REMOVE_RECURSE
  "CMakeFiles/astromlab_json.dir/json.cpp.o"
  "CMakeFiles/astromlab_json.dir/json.cpp.o.d"
  "libastromlab_json.a"
  "libastromlab_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astromlab_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
