
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cost_model.cpp" "src/core/CMakeFiles/astromlab_core.dir/cost_model.cpp.o" "gcc" "src/core/CMakeFiles/astromlab_core.dir/cost_model.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/astromlab_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/astromlab_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/model_zoo.cpp" "src/core/CMakeFiles/astromlab_core.dir/model_zoo.cpp.o" "gcc" "src/core/CMakeFiles/astromlab_core.dir/model_zoo.cpp.o.d"
  "/root/repo/src/core/recipes.cpp" "src/core/CMakeFiles/astromlab_core.dir/recipes.cpp.o" "gcc" "src/core/CMakeFiles/astromlab_core.dir/recipes.cpp.o.d"
  "/root/repo/src/core/study.cpp" "src/core/CMakeFiles/astromlab_core.dir/study.cpp.o" "gcc" "src/core/CMakeFiles/astromlab_core.dir/study.cpp.o.d"
  "/root/repo/src/core/value_model.cpp" "src/core/CMakeFiles/astromlab_core.dir/value_model.cpp.o" "gcc" "src/core/CMakeFiles/astromlab_core.dir/value_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/astromlab_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/astromlab_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/astromlab_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/astromlab_json.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/astromlab_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tokenizer/CMakeFiles/astromlab_tokenizer.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/astromlab_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
