file(REMOVE_RECURSE
  "CMakeFiles/astromlab_core.dir/cost_model.cpp.o"
  "CMakeFiles/astromlab_core.dir/cost_model.cpp.o.d"
  "CMakeFiles/astromlab_core.dir/experiment.cpp.o"
  "CMakeFiles/astromlab_core.dir/experiment.cpp.o.d"
  "CMakeFiles/astromlab_core.dir/model_zoo.cpp.o"
  "CMakeFiles/astromlab_core.dir/model_zoo.cpp.o.d"
  "CMakeFiles/astromlab_core.dir/recipes.cpp.o"
  "CMakeFiles/astromlab_core.dir/recipes.cpp.o.d"
  "CMakeFiles/astromlab_core.dir/study.cpp.o"
  "CMakeFiles/astromlab_core.dir/study.cpp.o.d"
  "CMakeFiles/astromlab_core.dir/value_model.cpp.o"
  "CMakeFiles/astromlab_core.dir/value_model.cpp.o.d"
  "libastromlab_core.a"
  "libastromlab_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astromlab_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
