# Empty dependencies file for astromlab_core.
# This may be replaced when dependencies are built.
