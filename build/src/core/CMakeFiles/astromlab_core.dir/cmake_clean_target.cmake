file(REMOVE_RECURSE
  "libastromlab_core.a"
)
