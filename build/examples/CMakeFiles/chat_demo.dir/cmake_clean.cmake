file(REMOVE_RECURSE
  "CMakeFiles/chat_demo.dir/chat_demo.cpp.o"
  "CMakeFiles/chat_demo.dir/chat_demo.cpp.o.d"
  "chat_demo"
  "chat_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chat_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
