# Empty compiler generated dependencies file for chat_demo.
# This may be replaced when dependencies are built.
