file(REMOVE_RECURSE
  "CMakeFiles/benchmark_model.dir/benchmark_model.cpp.o"
  "CMakeFiles/benchmark_model.dir/benchmark_model.cpp.o.d"
  "benchmark_model"
  "benchmark_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchmark_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
