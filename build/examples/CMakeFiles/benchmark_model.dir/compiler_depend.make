# Empty compiler generated dependencies file for benchmark_model.
# This may be replaced when dependencies are built.
