file(REMOVE_RECURSE
  "CMakeFiles/cpt_pipeline.dir/cpt_pipeline.cpp.o"
  "CMakeFiles/cpt_pipeline.dir/cpt_pipeline.cpp.o.d"
  "cpt_pipeline"
  "cpt_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpt_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
