# Empty compiler generated dependencies file for cpt_pipeline.
# This may be replaced when dependencies are built.
