file(REMOVE_RECURSE
  "CMakeFiles/ablation_data_quality.dir/ablation_data_quality.cpp.o"
  "CMakeFiles/ablation_data_quality.dir/ablation_data_quality.cpp.o.d"
  "ablation_data_quality"
  "ablation_data_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_data_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
