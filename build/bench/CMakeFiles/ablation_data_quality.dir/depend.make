# Empty dependencies file for ablation_data_quality.
# This may be replaced when dependencies are built.
