# Empty dependencies file for ablation_sft.
# This may be replaced when dependencies are built.
