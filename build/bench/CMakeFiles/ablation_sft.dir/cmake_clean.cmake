file(REMOVE_RECURSE
  "CMakeFiles/ablation_sft.dir/ablation_sft.cpp.o"
  "CMakeFiles/ablation_sft.dir/ablation_sft.cpp.o.d"
  "ablation_sft"
  "ablation_sft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
