file(REMOVE_RECURSE
  "CMakeFiles/fig1_series.dir/fig1_series.cpp.o"
  "CMakeFiles/fig1_series.dir/fig1_series.cpp.o.d"
  "fig1_series"
  "fig1_series.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
