# Empty compiler generated dependencies file for fig1_series.
# This may be replaced when dependencies are built.
