# Empty dependencies file for ablation_token_variant.
# This may be replaced when dependencies are built.
