file(REMOVE_RECURSE
  "CMakeFiles/ablation_token_variant.dir/ablation_token_variant.cpp.o"
  "CMakeFiles/ablation_token_variant.dir/ablation_token_variant.cpp.o.d"
  "ablation_token_variant"
  "ablation_token_variant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_token_variant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
