// Quickstart: the whole library in one small program.
//
// Builds a miniature synthetic astronomy world, trains a tiny base model
// on its pretraining corpus, and evaluates it on the MCQ benchmark with
// the base-model next-token method — the paper's headline metric.
//
//   ./build/examples/quickstart [--mult=0.15] [--seed=2024]
//
// Takes ~half a minute on one core.

#include <cstdio>

#include "core/experiment.hpp"
#include "core/model_zoo.hpp"
#include "eval/prompts.hpp"
#include "eval/token_method.hpp"
#include "nn/trainer.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"

using namespace astromlab;

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  log::set_level(log::parse_level(args.get_string("log", "info")));

  // 1. The synthetic world: knowledge base, benchmark MCQs, tokenizer.
  core::WorldConfig config;
  config.size_multiplier = args.get_double("mult", 0.15);
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 2024));
  const core::World world = core::build_world(config);
  std::printf("world: %zu facts across %zu topics, %zu benchmark MCQs, vocab %zu\n",
              world.kb.facts().size(), world.kb.topic_count(),
              world.mcqs.benchmark.size(), world.tok.vocab_size());

  // 2. A base model, pretrained from scratch on the world's corpus.
  const core::ScaleSpec spec = core::scale_spec(core::Scale::kS7, config);
  std::printf("architecture: %s\n", spec.arch.describe().c_str());
  const std::string corpus_text =
      corpus::build_pretrain_corpus(world.kb, world.mcqs.practice, spec.pretrain);
  const auto ids = world.tok.encode(corpus_text);
  nn::StreamDataset data(std::vector<nn::Token>(ids.begin(), ids.end()));
  std::printf("pretraining corpus: %zu tokens\n", data.size());

  nn::GptModel model(spec.arch);
  util::Rng rng(config.seed);
  model.init_weights(rng);
  nn::Trainer trainer(model, spec.pretrain_train);
  const nn::TrainStats stats = trainer.train(data, rng);
  std::printf("trained %zu steps: loss %.3f -> %.3f (%.0f tok/s)\n", stats.steps,
              stats.first_loss, stats.final_loss, stats.tokens_per_second);

  // 3. Benchmark with the base-model token method (paper §V-B).
  const auto results =
      eval::run_token_benchmark(model, world.tok, world.mcqs.benchmark, world.mcqs.practice);
  const eval::ScoreSummary summary = eval::summarize(results);
  std::printf("\nbase-model token-prediction score: %s%% (95%% CI %s-%s, chance 25.0)\n",
              eval::percent(summary.accuracy).c_str(), eval::percent(summary.ci_low).c_str(),
              eval::percent(summary.ci_high).c_str());

  // 4. One worked question for flavour.
  const corpus::McqItem& item = world.mcqs.benchmark.front();
  std::printf("\nexample question:\n%s",
              corpus::render_exam_block(item, /*include_answer=*/false).c_str());
  const auto fewshot = eval::pick_fewshot_examples(world.mcqs.practice);
  const auto letters =
      eval::detect_letter_tokens(model, world.tok, world.mcqs.practice, fewshot);
  const int predicted = eval::token_predict(model, world.tok, letters, item, fewshot);
  std::printf(" model answers %c, correct answer %c\n",
              predicted >= 0 ? static_cast<char>('A' + predicted) : '?',
              item.correct_letter());
  return 0;
}
