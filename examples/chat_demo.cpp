// Chat with an instruct model: scripted demo of the assistant behaviour
// the SFT phase produces (and of the failure modes the paper measures —
// format drift, generic answers).
//
//   ./build/examples/chat_demo [--scale=S7|S8] [--mult=0.2] [--lineage=native|astro]
//
// Prints a few benchmark-style exchanges: the user prompt, the raw model
// generation, and what the answer extractor made of it.

#include <cstdio>

#include "core/experiment.hpp"
#include "eval/answer_extract.hpp"
#include "eval/prompts.hpp"
#include "nn/sampler.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"

using namespace astromlab;

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  log::set_level(log::parse_level(args.get_string("log", "warn")));

  core::WorldConfig config;
  config.size_multiplier = args.get_double("mult", 0.2);
  core::World world = core::build_world(config);
  core::Pipeline pipeline(world, args.get_string("cache",
                                                 core::default_cache_dir().string()));

  const core::Scale scale =
      args.get_string("scale", "S7") == "S8" ? core::Scale::kS8 : core::Scale::kS7;
  const bool astro = args.get_string("lineage", "native") == "astro";
  std::printf("building %s instruct model (%s lineage)...\n", core::scale_paper_name(scale),
              astro ? "AstroLLaMA" : "native/vendor");
  const nn::GptModel model =
      astro ? pipeline.instruct_model(scale, corpus::CptVariant::kAic,
                                      core::SftKind::kAstroLLaMA)
            : pipeline.instruct_model(scale, std::nullopt, core::SftKind::kVendor);

  const std::size_t turns = static_cast<std::size_t>(args.get_int("turns", 3));
  for (std::size_t q = 0; q < std::min(turns, world.mcqs.benchmark.size()); ++q) {
    const corpus::McqItem& item = world.mcqs.benchmark[q];
    std::printf("\n----- exchange %zu -----\n", q + 1);
    std::printf("[user]\n%s\n", corpus::render_instruct_prompt(item).c_str());

    const std::string prompt = eval::build_instruct_prompt(item);
    const auto prompt_ids = world.tok.encode(prompt);
    nn::SampleConfig sample;
    sample.temperature = static_cast<float>(args.get_double("temperature", 0.0));
    sample.max_new_tokens = 96;
    sample.stop_tokens = {world.tok.end_turn_id(), world.tok.eos_id()};
    util::Rng rng(1234 + q);
    nn::Sampler sampler(model);
    const nn::SampleResult generated = sampler.generate(
        std::vector<nn::Token>(prompt_ids.begin(), prompt_ids.end()), sample, rng);
    const std::string reply = world.tok.decode(
        std::vector<tokenizer::TokenId>(generated.tokens.begin(), generated.tokens.end()));
    std::printf("[assistant]\n%s\n", reply.c_str());

    const eval::ExtractedAnswer extracted = eval::extract_answer(reply, item.options);
    std::printf("[extractor] method=%s answer=%c (correct %c)\n",
                eval::extraction_method_name(extracted.method),
                extracted.letter ? static_cast<char>('A' + *extracted.letter) : '?',
                item.correct_letter());
  }
  return 0;
}
