// Benchmarks an arbitrary saved checkpoint with all three methods — the
// tool a downstream user would run on their own fine-tuned model.
//
//   ./build/examples/benchmark_model <checkpoint.ckpt> [--mult=0.2] [--verbose]
//
// With no argument, trains (or loads from cache) the S7 base model first
// and benchmarks that, so the example is runnable out of the box.
// The checkpoint must have been trained in the same world (matching
// vocabulary); the world is reconstructed from --mult/--seed.

#include <cstdio>

#include "core/experiment.hpp"
#include "eval/full_instruct.hpp"
#include "eval/token_method.hpp"
#include "nn/checkpoint.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"

using namespace astromlab;

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  log::set_level(log::parse_level(args.get_string("log", "info")));

  core::WorldConfig config;
  config.size_multiplier = args.get_double("mult", 0.2);
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 2024));
  core::World world = core::build_world(config);

  nn::GptModel model = [&] {
    if (!args.positional().empty()) {
      const std::string path = args.positional().front();
      std::printf("loading checkpoint %s\n", path.c_str());
      return nn::load_checkpoint(path);
    }
    std::printf("no checkpoint given; using the cached S7 base model\n");
    core::Pipeline pipeline(world, args.get_string("cache",
                                                   core::default_cache_dir().string()));
    return pipeline.base_model(core::Scale::kS7);
  }();

  if (model.config().vocab_size != world.tok.vocab_size()) {
    std::fprintf(stderr,
                 "checkpoint vocab (%zu) does not match this world's tokenizer (%zu); "
                 "pass the --mult/--seed the model was trained with\n",
                 model.config().vocab_size, world.tok.vocab_size());
    return 1;
  }
  std::printf("model: %s\n\n", model.config().describe().c_str());

  // Method 1: base-model next-token (paper §V-B).
  const auto token_results =
      eval::run_token_benchmark(model, world.tok, world.mcqs.benchmark, world.mcqs.practice);
  const eval::ScoreSummary token = eval::summarize(token_results);
  std::printf("token prediction:   %s%%  (CI %s-%s)\n",
              eval::percent(token.accuracy).c_str(), eval::percent(token.ci_low).c_str(),
              eval::percent(token.ci_high).c_str());

  // Method 2: full instruct (paper §V-A) — only meaningful for models that
  // saw the chat template, but it runs on any checkpoint.
  const auto full_results =
      eval::run_full_instruct_benchmark(model, world.tok, world.mcqs.benchmark);
  const eval::ScoreSummary full = eval::summarize(full_results);
  std::printf("full instruct:      %s%%  (unanswered %zu; extraction json/regex/interp = "
              "%zu/%zu/%zu)\n",
              eval::percent(full.accuracy).c_str(), full.unanswered, full.json_extractions,
              full.regex_extractions, full.interpreter_extractions);

  if (args.get_bool("verbose", false)) {
    std::printf("\nper-question (token method):\n");
    for (std::size_t q = 0; q < token_results.size(); ++q) {
      const auto& result = token_results[q];
      std::printf("  Q%02zu %s predicted %c correct %c\n", q + 1,
                  result.is_correct() ? "ok  " : "MISS",
                  result.predicted >= 0 ? static_cast<char>('A' + result.predicted) : '?',
                  static_cast<char>('A' + result.correct));
    }
  }
  return 0;
}
