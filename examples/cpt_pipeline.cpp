// The paper's core workflow as a library walkthrough: base model ->
// continual pretraining (CPT) on an astro-ph corpus variant -> supervised
// fine-tuning (SFT) -> evaluation under all three benchmarking methods.
//
//   ./build/examples/cpt_pipeline [--scale=S7|S8|S70] [--variant=AIC|Abstract|Summary]
//                                 [--mult=0.2] [--cache=DIR]
//
// Uses the same cached pipeline as the bench binaries, so repeated runs
// (and the table1 bench) share trained checkpoints.

#include <cstdio>

#include "core/experiment.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/string_utils.hpp"

using namespace astromlab;

namespace {

core::Scale parse_scale(const std::string& name) {
  if (name == "S70") return core::Scale::kS70;
  if (name == "S8") return core::Scale::kS8;
  return core::Scale::kS7;
}

corpus::CptVariant parse_variant(const std::string& name) {
  const std::string lower = util::to_lower(name);
  if (lower == "abstract") return corpus::CptVariant::kAbstract;
  if (lower == "summary") return corpus::CptVariant::kSummary;
  if (lower == "fulltextocr" || lower == "ocr") return corpus::CptVariant::kFullTextOcr;
  return corpus::CptVariant::kAic;
}

void print_scores(const char* label, const eval::ScoreSummary& summary) {
  std::printf("  %-28s %s%%  (CI %s-%s, canonical %s, frontier %s, unanswered %zu)\n",
              label, eval::percent(summary.accuracy).c_str(),
              eval::percent(summary.ci_low).c_str(), eval::percent(summary.ci_high).c_str(),
              eval::percent(summary.canonical_accuracy).c_str(),
              eval::percent(summary.frontier_accuracy).c_str(), summary.unanswered);
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  log::set_level(log::parse_level(args.get_string("log", "info")));

  const core::Scale scale = parse_scale(args.get_string("scale", "S7"));
  const corpus::CptVariant variant = parse_variant(args.get_string("variant", "AIC"));

  core::WorldConfig config;
  config.size_multiplier = args.get_double("mult", 0.2);
  core::World world = core::build_world(config);
  core::Pipeline pipeline(std::move(world),
                          args.get_string("cache", core::default_cache_dir().string()));

  std::printf("\n=== lineage: %s base -> CPT(%s) -> SFT(inherited set) ===\n\n",
              core::scale_paper_name(scale), corpus::cpt_variant_name(variant));

  // Native baseline (vendor-instruct analog).
  std::printf("%s (native):\n", core::scale_paper_name(scale));
  const core::TripleScores native =
      pipeline.evaluate_family(scale, std::nullopt, core::SftKind::kVendor);
  print_scores("full instruct", native.full_instruct);
  print_scores("token (instruct model)", native.token_instruct);
  print_scores("token (base model)", native.token_base);

  // Specialised lineage.
  std::printf("\n%s-%s (specialised):\n", core::scale_astro_name(scale),
              corpus::cpt_variant_name(variant));
  const core::TripleScores astro =
      pipeline.evaluate_family(scale, variant, core::SftKind::kAstroLLaMA);
  print_scores("full instruct", astro.full_instruct);
  print_scores("token (instruct model)", astro.token_instruct);
  print_scores("token (base model)", astro.token_base);

  const double delta =
      (astro.token_base.accuracy - native.token_base.accuracy) * 100.0;
  std::printf("\nCPT effect on the base-token score: %+.1f points %s\n", delta,
              delta > 1.0 ? "(improvement — the paper's 70B finding)"
              : delta < -1.0 ? "(degradation — the paper's 7B catastrophic forgetting)"
                             : "(a wash — the paper's 8B finding)");
  return 0;
}
